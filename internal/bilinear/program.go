package bilinear

import (
	"abmm/internal/matrix"
	"abmm/internal/pool"
	"abmm/internal/schedule"
)

// runProgram executes a compiled linear-phase program on equally-shaped
// blocks. inputs provides the program's input registers; computed
// registers are allocated from the buffer pool with shape rows×cols and
// recycled as soon as liveness allows. If outBind is non-nil, target t
// is computed directly into outBind[t] where possible (pass-through and
// register-shared targets are copied). It returns the target blocks and
// a release function that must be called once the caller is done
// reading them.
func runProgram(p *schedule.Program, inputs []*matrix.Matrix, rows, cols int,
	outBind []*matrix.Matrix, workers int) (outs []*matrix.Matrix, release func()) {

	regs := make([]*matrix.Matrix, p.NumRegs)
	copy(regs, inputs)
	ownedBuf := make(map[int][]float64)

	isTarget := make(map[int]bool, len(p.Targets))
	for _, r := range p.Targets {
		isTarget[r] = true
	}
	// Pre-bind destination storage to computed target registers so the
	// final op of each output writes in place. A register can be bound
	// only once; duplicate targets fall back to a copy below.
	bound := make(map[int]bool)
	if outBind != nil {
		for t, r := range p.Targets {
			if r >= p.NumInputs && !bound[r] && outBind[t] != nil {
				regs[r] = outBind[t]
				bound[r] = true
			}
		}
	}

	recycle := func(r, opIdx int) {
		if r < p.NumInputs || isTarget[r] || p.LastUse[r] != opIdx {
			return
		}
		if buf, ok := ownedBuf[r]; ok {
			pool.Put(buf)
			delete(ownedBuf, r)
			regs[r] = nil
		}
	}

	coeff := make([]float64, 2)
	args := make([]*matrix.Matrix, 2)
	for i, op := range p.Ops {
		if regs[op.Dst] == nil {
			buf := pool.Get(rows * cols)
			ownedBuf[op.Dst] = buf
			regs[op.Dst] = matrix.FromSlice(rows, cols, buf)
		}
		if op.B < 0 {
			matrix.Scale(regs[op.Dst], regs[op.A], op.CA, workers)
		} else {
			coeff[0], coeff[1] = op.CA, op.CB
			args[0], args[1] = regs[op.A], regs[op.B]
			matrix.LinearCombine(regs[op.Dst], coeff, args, workers)
		}
		recycle(op.A, i)
		if op.B >= 0 {
			recycle(op.B, i)
		}
	}

	outs = make([]*matrix.Matrix, len(p.Targets))
	for t, r := range p.Targets {
		outs[t] = regs[r]
		if outBind != nil && outBind[t] != nil && regs[r] != outBind[t] {
			matrix.CopyInto(outBind[t], regs[r])
			outs[t] = outBind[t]
		}
	}
	release = func() {
		for _, buf := range ownedBuf {
			pool.Put(buf)
		}
	}
	return outs, release
}
