package bilinear_test

import (
	"testing"

	"abmm/internal/algos"
	"abmm/internal/bilinear"
	"abmm/internal/matrix"
)

func TestMultiplyMixedMatchesClassical(t *testing.T) {
	specs := []*bilinear.Spec{
		algos.Strassen().Spec,
		algos.Winograd().Spec,
		algos.Classical(2, 2, 2).Spec,
	}
	a, b := matrix.New(72, 72), matrix.New(72, 72)
	a.FillUniform(matrix.Rand(1), -1, 1)
	b.FillUniform(matrix.Rand(2), -1, 1)
	want := mulRef(a, b)
	for _, opt := range []bilinear.Options{
		{Workers: 2},
		{Workers: 2, Direct: true},
		{Workers: 2, TaskParallel: true},
	} {
		got := bilinear.MultiplyMixed(specs, a, b, opt)
		if d := matrix.MaxAbsDiff(got, want); d > 1e-11 {
			t.Errorf("opt %+v: diff %g", opt, d)
		}
	}
}

func TestMultiplyMixedSingleLevelEqualsUniform(t *testing.T) {
	a, b := matrix.New(32, 32), matrix.New(32, 32)
	a.FillUniform(matrix.Rand(3), -1, 1)
	b.FillUniform(matrix.Rand(4), -1, 1)
	spec := algos.Strassen().Spec
	mixed := bilinear.MultiplyMixed([]*bilinear.Spec{spec}, a, b, bilinear.Options{Workers: 1})
	uniform := bilinear.Multiply(spec, a, b, 1, bilinear.Options{Workers: 1})
	if !matrix.Equal(mixed, uniform) {
		t.Fatal("single-spec mixed run differs from uniform run")
	}
}

func TestMultiplyMixedRejectsMismatchedDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	bilinear.MultiplyMixed([]*bilinear.Spec{
		algos.Strassen().Spec,
		algos.Classical(3, 3, 3).Spec,
	}, matrix.New(36, 36), matrix.New(36, 36), bilinear.Options{})
}

func TestMultiplyMixedRejectsDecomposed(t *testing.T) {
	fd, err := algos.FullDecomposition(algos.Strassen())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	bilinear.MultiplyMixed([]*bilinear.Spec{algos.Strassen().Spec, fd.Spec},
		matrix.New(16, 16), matrix.New(16, 16), bilinear.Options{})
}

func TestMultiplyMixedEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	bilinear.MultiplyMixed(nil, matrix.New(4, 4), matrix.New(4, 4), bilinear.Options{})
}
