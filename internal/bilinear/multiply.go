package bilinear

import (
	"abmm/internal/matrix"
)

// Multiply runs the full standard-basis pipeline for a spec whose
// operators act directly on matrix blocks: pad the operands so that
// `levels` recursion steps divide evenly, convert to stacked layout,
// execute the recursion, and convert back, cropping the padding. It
// panics if the spec is decomposed (those require basis
// transformations; see internal/core).
func Multiply(s *Spec, a, b *matrix.Matrix, levels int, opt Options) *matrix.Matrix {
	if !s.IsStandard() {
		panic("bilinear: Multiply requires a standard-basis spec")
	}
	if a.Cols != b.Rows {
		panic(matrix.ErrShape)
	}
	w := opt.workers()
	pm, pk, pn := matrix.PadShape(a.Rows, a.Cols, b.Cols, s.M0, s.K0, s.N0, levels)
	ap := a.PadTo(pm, pk)
	bp := b.PadTo(pk, pn)
	as := ToRecursive(ap, s.M0, s.K0, levels, w)
	bs := ToRecursive(bp, s.K0, s.N0, levels, w)
	cs := Exec(s, as, bs, levels, opt)
	cp := matrix.New(pm, pn)
	FromRecursive(cs, cp, s.M0, s.N0, levels, w)
	return cp.CropTo(a.Rows, b.Cols)
}
