// Package bilinear implements recursive bilinear ⟨M₀,K₀,N₀;R⟩ matrix
// multiplication (Equation (2) of the paper): encoding the operands
// into R linear combinations S_r, T_r, recursively multiplying
// M_r = S_r·T_r, and decoding C_k = Σ_r w_kr M_r, with L recursion
// levels and the classical algorithm at the base.
//
// The engine operates on a block-recursive ("stacked") data layout in
// which an operand is a vector of equally-shaped base blocks stored
// contiguously; one recursion level groups the vector into D sub-vectors
// occupying contiguous row ranges. This uniformly supports standard
// algorithms (D = M₀K₀) and the decomposed recursive-bilinear framework
// of Beniamini–Schwartz, where the bilinear operators act on spaces of
// dimension D_U, D_V, D_W larger than the matrix block counts.
package bilinear

import (
	"fmt"
	"sync"

	"abmm/internal/exact"
	"abmm/internal/matrix"
	"abmm/internal/schedule"
)

// Spec is a recursive bilinear algorithm: the dimensions of its base
// case and its encoding/decoding matrices. For a standard-basis
// algorithm U is M₀K₀×R, V is K₀N₀×R and W is M₀N₀×R; for the bilinear
// phase of an alternative basis algorithm the row counts are the
// decomposition dimensions D_U, D_V, D_W instead (Definition II.2).
type Spec struct {
	Name          string
	M0, K0, N0, R int
	// U, V, W are the exact encoding/decoding matrices. Rows of U
	// index the (vectorized, row-major) blocks of A or the dimensions
	// of the alternative basis; columns index the R products.
	U, V, W *exact.Matrix

	// Float mirrors used by the execution engine, derived from the
	// exact matrices by NewSpec.
	uF, vF, wF *matrix.Matrix

	progOnce           sync.Once
	encAProg, encBProg *schedule.Program
	decProg            *schedule.Program
}

// Programs returns the CSE-compiled linear-phase programs: the
// encodings of A and B (targets = the R products' operands) and the
// decoding (targets = the D_W output blocks over the products).
// Compilation happens once per Spec and is cached.
func (s *Spec) Programs() (encA, encB, dec *schedule.Program) {
	s.progOnce.Do(func() {
		s.encAProg = schedule.Compile(s.U)
		s.encBProg = schedule.Compile(s.V)
		s.decProg = schedule.Compile(s.W.Transpose())
	})
	return s.encAProg, s.encBProg, s.decProg
}

// ScheduledAdditions returns the per-step block addition counts of the
// CSE-compiled linear phases. These are the counts that determine the
// arithmetic-cost leading coefficient in practice (e.g. 4+4+7 = 15 for
// Winograd's variant, 12 for the alternative basis bilinear phases).
func (s *Spec) ScheduledAdditions() (encA, encB, dec int) {
	a, b, d := s.Programs()
	return a.Additions(), b.Additions(), d.Additions()
}

// TotalScheduledAdditions returns the total scheduled block additions
// per recursion step.
func (s *Spec) TotalScheduledAdditions() int {
	a, b, d := s.ScheduledAdditions()
	return a + b + d
}

// NewSpec builds a Spec and its float mirrors. It validates shape
// consistency but not correctness; use Validate for the Brent check.
func NewSpec(name string, m0, k0, n0 int, u, v, w *exact.Matrix) (*Spec, error) {
	if m0 < 1 || k0 < 1 || n0 < 1 {
		return nil, fmt.Errorf("bilinear: invalid base dims ⟨%d,%d,%d⟩", m0, k0, n0)
	}
	r := u.Cols
	if v.Cols != r || w.Cols != r {
		return nil, fmt.Errorf("bilinear: inconsistent product counts %d/%d/%d", u.Cols, v.Cols, w.Cols)
	}
	if u.Rows < m0*k0 || v.Rows < k0*n0 || w.Rows < m0*n0 {
		return nil, fmt.Errorf("bilinear: operator row counts %d/%d/%d below block counts %d/%d/%d",
			u.Rows, v.Rows, w.Rows, m0*k0, k0*n0, m0*n0)
	}
	s := &Spec{Name: name, M0: m0, K0: k0, N0: n0, R: r, U: u, V: v, W: w}
	s.uF = matrix.FromSlice(u.Rows, u.Cols, u.Float64s())
	s.vF = matrix.FromSlice(v.Rows, v.Cols, v.Float64s())
	s.wF = matrix.FromSlice(w.Rows, w.Cols, w.Float64s())
	return s, nil
}

// MustSpec is NewSpec for statically-known-good inputs.
func MustSpec(name string, m0, k0, n0 int, u, v, w *exact.Matrix) *Spec {
	s, err := NewSpec(name, m0, k0, n0, u, v, w)
	if err != nil {
		panic(err)
	}
	return s
}

// DU, DV, DW return the dimensions of the spaces the bilinear operators
// act on (equal to M₀K₀ etc. for standard-basis algorithms).
func (s *Spec) DU() int { return s.U.Rows }
func (s *Spec) DV() int { return s.V.Rows }
func (s *Spec) DW() int { return s.W.Rows }

// CoeffU, CoeffV and CoeffW expose the float64 mirrors of the exact
// operators for executors outside this package (e.g. the distributed
// runtime). The returned matrices must not be modified.
func (s *Spec) CoeffU() *matrix.Matrix { return s.uF }
func (s *Spec) CoeffV() *matrix.Matrix { return s.vF }
func (s *Spec) CoeffW() *matrix.Matrix { return s.wF }

// IsStandard reports whether the operators act directly on matrix
// blocks (no dimension expansion).
func (s *Spec) IsStandard() bool {
	return s.DU() == s.M0*s.K0 && s.DV() == s.K0*s.N0 && s.DW() == s.M0*s.N0
}

// Validate checks the Brent triple-product condition. It only applies
// to standard-basis specs; bilinear phases of alternative basis
// algorithms are validated through their standard-basis representation
// (Definition III.2).
func (s *Spec) Validate() error {
	if !s.IsStandard() {
		return fmt.Errorf("bilinear: %s is decomposed; validate its standard-basis representation", s.Name)
	}
	return exact.VerifyBilinear(s.M0, s.K0, s.N0, s.U, s.V, s.W)
}

// Additions returns the number of block additions performed per
// recursion step by the three linear phases: a linear combination of t
// nonzero terms costs t-1 additions, and combinations with zero terms
// cost nothing.
func (s *Spec) Additions() (encA, encB, dec int) {
	return combAdds(s.U), combAdds(s.V), combAdds(s.W.Transpose())
}

// TotalAdditions returns the total block additions per recursion step.
func (s *Spec) TotalAdditions() int {
	a, b, c := s.Additions()
	return a + b + c
}

// combAdds counts Σ_columns max(nnz(col)-1, 0) for the encodings of U
// and V; for W the decoding combines rows of Wᵀ (one combination per
// output block), so callers pass Wᵀ.
func combAdds(m *exact.Matrix) int {
	total := 0
	for c := 0; c < m.Cols; c++ {
		nnz := 0
		for r := 0; r < m.Rows; r++ {
			if m.At(r, c).Sign() != 0 {
				nnz++
			}
		}
		if nnz > 1 {
			total += nnz - 1
		}
	}
	return total
}
