package bilinear

import (
	"fmt"
	"sync"

	"abmm/internal/matrix"
	"abmm/internal/parallel"
	"abmm/internal/pool"
)

// Options controls execution of the recursive bilinear engine.
type Options struct {
	// Workers is the degree of parallelism; 0 means GOMAXPROCS.
	Workers int
	// TaskParallel selects the task-parallel schedule: the R recursive
	// products of the top recursion levels run as concurrent tasks with
	// sequential kernels, instead of the default schedule of a
	// sequential recursion over parallel linear-combination and
	// base-case kernels (the paper's scheme). The task schedule uses
	// more memory (R product buffers per parallel node) and serves as
	// an ablation point.
	TaskParallel bool
	// Direct disables the CSE-compiled linear-phase programs and
	// executes each encoding/decoding combination independently. This
	// uses less memory (three scratch blocks per recursion level) but
	// performs the raw operator addition counts with no sharing — e.g.
	// 24 instead of 15 additions per step for Winograd's variant. It
	// serves as the memory-lean mode and as an ablation point.
	Direct bool
}

func (o Options) workers() int {
	if o.Workers <= 0 {
		return parallel.DefaultWorkers()
	}
	return o.Workers
}

// Exec multiplies two operands in stacked layout: a must be the
// ToRecursive image (branching D_U, depth levels) of the left operand
// possibly followed by a basis transformation, and b likewise with
// branching D_V. It returns the stacked product with branching D_W,
// which for a standard-basis spec is the ToRecursive image of C = A·B.
func Exec(s *Spec, a, b *matrix.Matrix, levels int, opt Options) *matrix.Matrix {
	if levels < 0 {
		panic("bilinear: negative recursion depth")
	}
	du, dv, dw := ipow(s.DU(), levels), ipow(s.DV(), levels), ipow(s.DW(), levels)
	if a.Rows%du != 0 || b.Rows%dv != 0 {
		panic(fmt.Sprintf("bilinear: operand rows %d/%d not divisible by branching %d/%d", a.Rows, b.Rows, du, dv))
	}
	if a.Cols != b.Rows/dv {
		panic(fmt.Sprintf("bilinear: base blocks %dx%d · %dx%d do not conform",
			a.Rows/du, a.Cols, b.Rows/dv, b.Cols))
	}
	e := newEngine(s, opt, levels)
	c := matrix.New(dw*(a.Rows/du), b.Cols)
	e.recurse(c, a, b, levels)
	return c
}

type engine struct {
	s             *Spec
	workers       int
	kernelWorkers int
	// taskMinLevel is the lowest recursion level (counting down toward
	// the base case at 0) at which products are still spawned as tasks;
	// 0 disables task parallelism entirely.
	taskMinLevel int
	limiter      *parallel.Limiter
	direct       bool
	// mixed, when non-nil, selects a different spec per level
	// (non-stationary recursion): mixed[0] at the top level.
	mixed  []*Spec
	levels int
	cols   map[*Spec]*specCols
}

// specCols caches the encoding coefficient columns of a spec.
type specCols struct {
	u, v [][]float64
}

// specAt returns the algorithm for a recursion level (levels counts
// down toward the base case at 0).
func (e *engine) specAt(level int) *Spec {
	if e.mixed == nil {
		return e.s
	}
	return e.mixed[e.levels-level]
}

// colsOf returns (building once) the encoding columns of a spec.
func (e *engine) colsOf(s *Spec) *specCols {
	if c, ok := e.cols[s]; ok {
		return c
	}
	c := &specCols{u: columns(s.uF), v: columns(s.vF)}
	e.cols[s] = c
	return c
}

func newEngine(s *Spec, opt Options, levels int) *engine {
	e := &engine{s: s, workers: opt.workers(), kernelWorkers: opt.workers(), direct: opt.Direct}
	if !e.direct {
		s.Programs() // compile once before any parallel execution
	}
	if opt.TaskParallel {
		// Spawn tasks on the top levels until R^depth covers ~4 tasks
		// per worker, then recurse sequentially with serial kernels.
		want := 4 * e.workers
		depth, span := 0, 1
		for span < want && depth < levels {
			span *= s.R
			depth++
		}
		e.taskMinLevel = levels - depth + 1
		if e.taskMinLevel < 1 {
			e.taskMinLevel = 1
		}
		e.limiter = parallel.NewLimiter(4 * e.workers)
		e.kernelWorkers = 1
	}
	e.levels = levels
	e.cols = make(map[*Spec]*specCols, 1)
	e.colsOf(s)
	return e
}

func columns(m *matrix.Matrix) [][]float64 {
	out := make([][]float64, m.Cols)
	for r := range out {
		col := make([]float64, m.Rows)
		for i := range col {
			col[i] = m.At(i, r)
		}
		out[r] = col
	}
	return out
}

func (e *engine) recurse(c, a, b *matrix.Matrix, level int) {
	if level == 0 {
		matrix.Mul(c, a, b, e.kernelWorkers)
		return
	}
	if !e.direct {
		e.scheduled(c, a, b, level)
		return
	}
	if e.limiter != nil && level >= e.taskMinLevel {
		e.taskParallel(c, a, b, level)
		return
	}
	e.sequential(c, a, b, level)
}

// scheduled runs one recursion step using the CSE-compiled linear-phase
// programs: all S_r and T_r are produced by the shared encode programs,
// the R products recurse (as concurrent tasks on the top levels in
// task-parallel mode), and the decode program writes the output groups
// in place.
func (e *engine) scheduled(c, a, b *matrix.Matrix, level int) {
	s := e.specAt(level)
	encA, encB, dec := s.Programs()
	ah, bh, ch := a.Rows/s.DU(), b.Rows/s.DV(), c.Rows/s.DW()
	S, relS := runProgram(encA, groups(a, s.DU()), ah, a.Cols, nil, e.kernelWorkers)
	T, relT := runProgram(encB, groups(b, s.DV()), bh, b.Cols, nil, e.kernelWorkers)
	prods := make([]*matrix.Matrix, s.R)
	pBufs := make([][]float64, s.R)
	var wg sync.WaitGroup
	for r := 0; r < s.R; r++ {
		pBufs[r] = pool.Get(ch * c.Cols)
		prods[r] = matrix.FromSlice(ch, c.Cols, pBufs[r])
		task := func(r int) func() {
			return func() { e.recurse(prods[r], S[r], T[r], level-1) }
		}(r)
		if e.limiter == nil || level < e.taskMinLevel || r == s.R-1 || !e.limiter.TrySpawn(&wg, task) {
			task()
		}
	}
	wg.Wait()
	relS()
	relT()
	_, relC := runProgram(dec, prods, ch, c.Cols, groups(c, s.DW()), e.kernelWorkers)
	relC()
	for _, buf := range pBufs {
		pool.Put(buf)
	}
}

// sequential is the low-memory depth-first schedule: one S, T and
// product buffer per recursion level, with products accumulated
// directly into the output groups as they are produced.
func (e *engine) sequential(c, a, b *matrix.Matrix, level int) {
	s := e.specAt(level)
	sc := e.colsOf(s)
	ah, bh, ch := a.Rows/s.DU(), b.Rows/s.DV(), c.Rows/s.DW()
	sBuf, tBuf, pBuf := pool.Get(ah*a.Cols), pool.Get(bh*b.Cols), pool.Get(ch*c.Cols)
	S := matrix.FromSlice(ah, a.Cols, sBuf)
	T := matrix.FromSlice(bh, b.Cols, tBuf)
	P := matrix.FromSlice(ch, c.Cols, pBuf)
	aGroups := groups(a, s.DU())
	bGroups := groups(b, s.DV())
	cGroups := groups(c, s.DW())
	touched := make([]bool, s.DW())
	for r := 0; r < s.R; r++ {
		matrix.LinearCombine(S, sc.u[r], aGroups, e.kernelWorkers)
		matrix.LinearCombine(T, sc.v[r], bGroups, e.kernelWorkers)
		e.recurse(P, S, T, level-1)
		for k := 0; k < s.DW(); k++ {
			w := s.wF.At(k, r)
			if w == 0 {
				continue
			}
			if touched[k] {
				matrix.AddScaled(cGroups[k], P, w, e.kernelWorkers)
			} else {
				matrix.Scale(cGroups[k], P, w, e.kernelWorkers)
				touched[k] = true
			}
		}
	}
	for k, t := range touched {
		if !t {
			cGroups[k].Zero()
		}
	}
	pool.Put(sBuf)
	pool.Put(tBuf)
	pool.Put(pBuf)
}

// taskParallel runs the R products of this node as concurrent tasks
// when the limiter grants slots (running them inline otherwise), then
// decodes all output groups in parallel. Each task owns its S, T and
// product buffers.
func (e *engine) taskParallel(c, a, b *matrix.Matrix, level int) {
	s := e.specAt(level)
	sc := e.colsOf(s)
	ah, bh, ch := a.Rows/s.DU(), b.Rows/s.DV(), c.Rows/s.DW()
	aGroups := groups(a, s.DU())
	bGroups := groups(b, s.DV())
	var wg sync.WaitGroup
	prods := make([]*matrix.Matrix, s.R)
	pBufs := make([][]float64, s.R)
	for r := 0; r < s.R; r++ {
		pBufs[r] = pool.Get(ch * c.Cols)
		prods[r] = matrix.FromSlice(ch, c.Cols, pBufs[r])
		task := func(r int) func() {
			return func() {
				sBuf, tBuf := pool.Get(ah*a.Cols), pool.Get(bh*b.Cols)
				S := matrix.FromSlice(ah, a.Cols, sBuf)
				T := matrix.FromSlice(bh, b.Cols, tBuf)
				matrix.LinearCombine(S, sc.u[r], aGroups, 1)
				matrix.LinearCombine(T, sc.v[r], bGroups, 1)
				e.recurse(prods[r], S, T, level-1)
				pool.Put(sBuf)
				pool.Put(tBuf)
			}
		}(r)
		// The last product always runs inline so the spawning
		// goroutine contributes work instead of blocking.
		if r == s.R-1 || !e.limiter.TrySpawn(&wg, task) {
			task()
		}
	}
	wg.Wait()
	cGroups := groups(c, s.DW())
	parallel.For(s.DW(), e.workers, 1, func(k int) {
		matrix.LinearCombine(cGroups[k], s.wF.Row(k), prods, 1)
	})
	for _, buf := range pBufs {
		pool.Put(buf)
	}
}

// groups splits a stacked operand into its d top-level contiguous row
// groups.
func groups(m *matrix.Matrix, d int) []*matrix.Matrix {
	h := m.Rows / d
	out := make([]*matrix.Matrix, d)
	for i := range out {
		out[i] = m.View(i*h, 0, h, m.Cols)
	}
	return out
}
