package bilinear

import (
	"context"
	"fmt"
	"runtime/trace"
	"sync"

	"abmm/internal/kernel"
	"abmm/internal/matrix"
	"abmm/internal/obs"
	"abmm/internal/parallel"
	"abmm/internal/pool"
)

// Options controls execution of the recursive bilinear engine.
type Options struct {
	// Workers is the degree of parallelism; 0 means GOMAXPROCS.
	Workers int
	// TaskParallel selects the task-parallel schedule: the R recursive
	// products of the top recursion levels run as concurrent tasks with
	// sequential kernels, instead of the default schedule of a
	// sequential recursion over parallel linear-combination and
	// base-case kernels (the paper's scheme). The task schedule uses
	// more memory (R product buffers per parallel node) and serves as
	// an ablation point.
	TaskParallel bool
	// Direct disables the CSE-compiled linear-phase programs and
	// executes each encoding/decoding combination independently. This
	// uses less memory (three scratch blocks per recursion level) but
	// performs the raw operator addition counts with no sharing — e.g.
	// 24 instead of 15 additions per step for Winograd's variant. It
	// serves as the memory-lean mode and as an ablation point.
	Direct bool
	// Recorder, when non-nil, receives task spawn/inline events from
	// the task-parallel schedules and nested pack/kernel phase spans
	// from the base-case kernel; nil disables recording at zero cost.
	Recorder obs.Recorder
	// Kernel carries the packed base-case kernel's cache-blocking
	// parameters; the zero value selects kernel.DefaultBlocking.
	Kernel kernel.Blocking
	// NoFuse disables the fused leaf step: the last recursion level runs
	// the ordinary materialize-then-multiply schedule instead of folding
	// the encode/decode combinations into the kernel's pack and
	// write-out passes. Ablation and bisection aid; the fused step is
	// the default.
	NoFuse bool
}

func (o Options) workers() int { return parallel.Resolve(o.Workers) }

// Exec multiplies two operands in stacked layout: a must be the
// ToRecursive image (branching D_U, depth levels) of the left operand
// possibly followed by a basis transformation, and b likewise with
// branching D_V. It returns the stacked product with branching D_W,
// which for a standard-basis spec is the ToRecursive image of C = A·B.
func Exec(s *Spec, a, b *matrix.Matrix, levels int, opt Options) *matrix.Matrix {
	e := NewEngine(s, opt, levels)
	du, dw := ipow(s.DU(), levels), ipow(s.DW(), levels)
	c := matrix.New(dw*(a.Rows/du), b.Cols)
	e.ExecInto(c, a, b, pool.Global)
	return c
}

// Engine executes the recursive bilinear phase of one algorithm at one
// recursion depth. An Engine is immutable after construction and safe
// for concurrent ExecInto calls; core.Plan builds one per compiled plan
// and reuses it for every execution of that shape.
type Engine struct {
	s             *Spec
	workers       int
	kernelWorkers int
	// taskMinLevel is the lowest recursion level (counting down toward
	// the base case at 0) at which products are still spawned as tasks;
	// 0 disables task parallelism entirely.
	taskMinLevel int
	limiter      *parallel.Limiter
	direct       bool
	// mixed, when non-nil, selects a different spec per level
	// (non-stationary recursion): mixed[0] at the top level.
	mixed  []*Spec
	levels int
	cols   map[*Spec]*specCols
	rec    obs.Recorder
	// kb is the base-case kernel blocking; fuse selects the fused leaf
	// step at level 1 (see fused.go).
	kb   kernel.Blocking
	fuse bool
	// regionNames[level] names the runtime/trace region of a recursion
	// node at that level (level counts down toward the base case at 0).
	regionNames []string
}

// specCols caches the encoding coefficient columns of a spec.
type specCols struct {
	u, v [][]float64
}

// specAt returns the algorithm for a recursion level (levels counts
// down toward the base case at 0).
func (e *Engine) specAt(level int) *Spec {
	if e.mixed == nil {
		return e.s
	}
	return e.mixed[e.levels-level]
}

// register caches the encoding columns of a spec. Registration happens
// only at construction (NewEngine, ExecMixed), before the engine is
// shared; colsOf is the read-only execution-time lookup, so concurrent
// ExecInto calls never write e.cols.
func (e *Engine) register(s *Spec) {
	if _, ok := e.cols[s]; ok {
		return
	}
	e.cols[s] = &specCols{u: columns(s.uF), v: columns(s.vF)}
}

// colsOf returns the encoding columns of a spec registered at
// construction. It is read-only and safe under concurrency; an
// unregistered spec is a construction bug, not a recoverable state.
func (e *Engine) colsOf(s *Spec) *specCols {
	c, ok := e.cols[s]
	if !ok {
		panic("bilinear: spec not registered with engine at construction")
	}
	return c
}

// NewEngine compiles the execution state for running spec s at the
// given depth: resolved workers, the task-spawning depth, compiled
// linear-phase programs, and the per-spec coefficient columns. The
// returned Engine is reusable and concurrency-safe.
func NewEngine(s *Spec, opt Options, levels int) *Engine {
	if levels < 0 {
		panic("bilinear: negative recursion depth")
	}
	e := &Engine{
		s: s, workers: opt.workers(), kernelWorkers: opt.workers(),
		direct: opt.Direct, rec: opt.Recorder, kb: opt.Kernel, fuse: !opt.NoFuse,
	}
	e.regionNames = make([]string, levels+1)
	for l := 1; l <= levels; l++ {
		e.regionNames[l] = fmt.Sprintf("bilinear.L%d", l)
	}
	if !e.direct {
		s.Programs() // compile once before any parallel execution
	}
	if opt.TaskParallel {
		// Spawn tasks on the top levels until R^depth covers ~4 tasks
		// per worker, then recurse sequentially with serial kernels.
		want := 4 * e.workers
		depth, span := 0, 1
		for span < want && depth < levels {
			span *= s.R
			depth++
		}
		e.taskMinLevel = levels - depth + 1
		if e.taskMinLevel < 1 {
			e.taskMinLevel = 1
		}
		e.limiter = parallel.NewLimiter(4 * e.workers)
		e.kernelWorkers = 1
	}
	e.levels = levels
	e.cols = make(map[*Spec]*specCols, 1)
	e.register(s)
	return e
}

// WithRecorder returns an engine identical to e but reporting to rec —
// a shallow copy sharing the compiled state (coefficient columns,
// limiter, programs), so it costs one small allocation, not a
// recompile. The serving layer uses it to attach a per-request trace
// recorder to a cached plan's engine for a single execution. Returns e
// itself when rec is already its recorder.
func (e *Engine) WithRecorder(rec obs.Recorder) *Engine {
	if e == nil || rec == e.rec {
		return e
	}
	e2 := *e
	e2.rec = rec
	return &e2
}

func columns(m *matrix.Matrix) [][]float64 {
	out := make([][]float64, m.Cols)
	for r := range out {
		col := make([]float64, m.Rows)
		for i := range col {
			col[i] = m.At(i, r)
		}
		out[r] = col
	}
	return out
}

// ExecInto runs the engine's recursion, writing the stacked product
// into c. Scratch is drawn from al; with a warm pool.Arena the call
// performs no heap allocation on the default (scheduled, sequential-
// kernel) path. c must be fully writable scratch or output — its prior
// contents are ignored.
//abmm:hotpath
func (e *Engine) ExecInto(c, a, b *matrix.Matrix, al pool.Allocator) {
	e.ExecIntoCancel(c, a, b, al, nil)
}

// ExecIntoCancel is ExecInto with a cooperative cancellation token: the
// recursion polls cn at every node boundary (one atomic load; no
// per-element or per-leaf cost) and abandons the remaining subtree once
// cn is set, leaving c in an unspecified state. Scratch accounting stays
// balanced on the abandoned path, so the arena remains reusable. A nil
// cn is valid and makes this identical to ExecInto.
//abmm:hotpath
func (e *Engine) ExecIntoCancel(c, a, b *matrix.Matrix, al pool.Allocator, cn *parallel.Cancel) {
	s, levels := e.s, e.levels
	du, dv, dw := ipow(s.DU(), levels), ipow(s.DV(), levels), ipow(s.DW(), levels)
	if a.Rows%du != 0 || b.Rows%dv != 0 {
		panic(fmt.Sprintf("bilinear: operand rows %d/%d not divisible by branching %d/%d", a.Rows, b.Rows, du, dv))
	}
	if a.Cols != b.Rows/dv {
		panic(fmt.Sprintf("bilinear: base blocks %dx%d · %dx%d do not conform",
			a.Rows/du, a.Cols, b.Rows/dv, b.Cols))
	}
	if c.Rows != dw*(a.Rows/du) || c.Cols != b.Cols {
		panic(fmt.Sprintf("bilinear: output %dx%d, want %dx%d", c.Rows, c.Cols, dw*(a.Rows/du), b.Cols))
	}
	e.recurse(c, a, b, levels, al, cn)
}

func (e *Engine) recurse(c, a, b *matrix.Matrix, level int, al pool.Allocator, cn *parallel.Cancel) {
	// Cooperative cancellation: one nil-check-plus-atomic-load per
	// recursion node (base cases included — a leaf is still a whole
	// classical block multiply, not an element). Bailing here, before
	// any scratch is drawn for this node, keeps pool accounting
	// balanced; the skipped subtree leaves its output block garbage,
	// which is fine because a canceled multiplication's result is
	// discarded by contract.
	if cn.Canceled() {
		return
	}
	// With the execution tracer on, every recursion node above the base
	// case emits a named region, so `go tool trace` shows the recursion
	// tree under the per-multiplication task (see internal/obs).
	if level > 0 && trace.IsEnabled() {
		// Trace regions are process-scoped; cancellation travels in cn,
		// not a context, so there is no caller ctx to sever.
		//abmm:allow ctx-discipline
		defer trace.StartRegion(context.Background(), e.regionNames[level]).End()
	}
	if level == 0 {
		kernel.Mul(c, a, b, e.kb, e.kernelWorkers, al, e.rec)
		return
	}
	// The last recursion level collapses into fused packed-kernel calls
	// (encode during packing, decode during write-out; see fused.go).
	// This holds for every schedule — task-parallel runs spawn their
	// tasks at levels >= 2 and each subtree bottoms out here — so the
	// bitwise result is schedule-independent, as the determinism tests
	// pin.
	if level == 1 && e.fuse {
		e.fusedStep(c, a, b, al, cn)
		return
	}
	if !e.direct {
		e.scheduled(c, a, b, level, al, cn)
		return
	}
	if e.limiter != nil && level >= e.taskMinLevel {
		e.taskParallel(c, a, b, level, al, cn)
		return
	}
	e.sequential(c, a, b, level, al, cn)
}

// scheduled runs one recursion step using the CSE-compiled linear-phase
// programs: all S_r and T_r are produced by the shared encode programs,
// the R products recurse (as concurrent tasks on the top levels in
// task-parallel mode), and the decode program writes the output groups
// in place.
func (e *Engine) scheduled(c, a, b *matrix.Matrix, level int, al pool.Allocator, cn *parallel.Cancel) {
	s := e.specAt(level)
	encA, encB, dec := s.Programs()
	ah, bh, ch := a.Rows/s.DU(), b.Rows/s.DV(), c.Rows/s.DW()
	aGroups := groupsIn(al, a, s.DU())
	bGroups := groupsIn(al, b, s.DV())
	sRun := runProgram(encA, aGroups, ah, a.Cols, nil, e.kernelWorkers, al)
	tRun := runProgram(encB, bGroups, bh, b.Cols, nil, e.kernelWorkers, al)
	prods := al.Mats(s.R)
	for r := range prods {
		prods[r] = al.Mat(ch, c.Cols)
	}
	if e.limiter != nil && level >= e.taskMinLevel {
		// Done in a separate method so its closures don't force sRun
		// and tRun to the heap on the non-task path.
		e.recurseTasks(prods, sRun.outs, tRun.outs, level, al, cn)
	} else {
		for r := 0; r < s.R; r++ {
			e.recurse(prods[r], sRun.outs[r], tRun.outs[r], level-1, al, cn)
		}
	}
	sRun.release(al)
	tRun.release(al)
	putGroups(al, aGroups)
	putGroups(al, bGroups)
	cGroups := groupsIn(al, c, s.DW())
	dRun := runProgram(dec, prods, ch, c.Cols, cGroups, e.kernelWorkers, al)
	dRun.release(al)
	putGroups(al, cGroups)
	for _, p := range prods {
		al.PutMat(p)
	}
	al.PutMats(prods)
}

// recurseTasks runs the R product recursions of one scheduled node as
// limiter-bounded concurrent tasks. The task-parallel schedules are the
// opt-in, memory-hungry ablation mode: per-product task closures (and
// the goroutines behind them) allocate by design, so the zero-alloc
// guarantee covers only the default schedule.
//
//abmm:coldpath
func (e *Engine) recurseTasks(prods, souts, touts []*matrix.Matrix, level int, al pool.Allocator, cn *parallel.Cancel) {
	var wg sync.WaitGroup
	n := len(prods)
	for r := 0; r < n; r++ {
		task := func(r int) func() {
			return func() { e.recurse(prods[r], souts[r], touts[r], level-1, al, cn) }
		}(r)
		// The last product always runs inline so the spawning
		// goroutine contributes work instead of blocking.
		spawned := r != n-1 && e.limiter.TrySpawn(&wg, task)
		if e.rec != nil {
			e.rec.TaskSpawn(spawned)
		}
		if !spawned {
			task()
		}
	}
	wg.Wait()
}

// sequential is the low-memory depth-first schedule: one S, T and
// product buffer per recursion level, with products accumulated
// directly into the output groups as they are produced.
func (e *Engine) sequential(c, a, b *matrix.Matrix, level int, al pool.Allocator, cn *parallel.Cancel) {
	s := e.specAt(level)
	sc := e.colsOf(s)
	ah, bh, ch := a.Rows/s.DU(), b.Rows/s.DV(), c.Rows/s.DW()
	S := al.Mat(ah, a.Cols)
	T := al.Mat(bh, b.Cols)
	P := al.Mat(ch, c.Cols)
	aGroups := groupsIn(al, a, s.DU())
	bGroups := groupsIn(al, b, s.DV())
	cGroups := groupsIn(al, c, s.DW())
	// The touched flags live on the stack: no catalog algorithm has
	// D_W > 32, and the cold spill keeps exotic specs correct.
	var touchedBuf [32]bool
	touched := touchedBuf[:]
	if s.DW() > len(touchedBuf) {
		// Cold spill: no catalog algorithm exceeds the stack table.
		//abmm:allow hotpath-alloc
		touched = make([]bool, s.DW())
	}
	touched = touched[:s.DW()]
	for r := 0; r < s.R; r++ {
		if cn.Canceled() {
			break
		}
		matrix.LinearCombine(S, sc.u[r], aGroups, e.kernelWorkers)
		matrix.LinearCombine(T, sc.v[r], bGroups, e.kernelWorkers)
		e.recurse(P, S, T, level-1, al, cn)
		for k := 0; k < s.DW(); k++ {
			w := s.wF.At(k, r)
			if w == 0 {
				continue
			}
			if touched[k] {
				matrix.AddScaled(cGroups[k], P, w, e.kernelWorkers)
			} else {
				matrix.Scale(cGroups[k], P, w, e.kernelWorkers)
				touched[k] = true
			}
		}
	}
	for k, t := range touched {
		if !t {
			cGroups[k].Zero()
		}
	}
	putGroups(al, aGroups)
	putGroups(al, bGroups)
	putGroups(al, cGroups)
	al.PutMat(S)
	al.PutMat(T)
	al.PutMat(P)
}

// taskParallel runs the R products of this node as concurrent tasks
// when the limiter grants slots (running them inline otherwise), then
// decodes all output groups in parallel. Each task owns its S, T and
// product buffers. Like recurseTasks this is the opt-in task-parallel
// ablation mode, allocating task closures by design.
//
//abmm:coldpath
func (e *Engine) taskParallel(c, a, b *matrix.Matrix, level int, al pool.Allocator, cn *parallel.Cancel) {
	s := e.specAt(level)
	sc := e.colsOf(s)
	ah, bh, ch := a.Rows/s.DU(), b.Rows/s.DV(), c.Rows/s.DW()
	aGroups := groupsIn(al, a, s.DU())
	bGroups := groupsIn(al, b, s.DV())
	var wg sync.WaitGroup
	prods := al.Mats(s.R)
	for r := 0; r < s.R; r++ {
		prods[r] = al.Mat(ch, c.Cols)
		task := func(r int) func() {
			return func() {
				S := al.Mat(ah, a.Cols)
				T := al.Mat(bh, b.Cols)
				matrix.LinearCombine(S, sc.u[r], aGroups, 1)
				matrix.LinearCombine(T, sc.v[r], bGroups, 1)
				e.recurse(prods[r], S, T, level-1, al, cn)
				al.PutMat(S)
				al.PutMat(T)
			}
		}(r)
		// The last product always runs inline so the spawning
		// goroutine contributes work instead of blocking.
		spawned := r != s.R-1 && e.limiter.TrySpawn(&wg, task)
		if e.rec != nil {
			e.rec.TaskSpawn(spawned)
		}
		if !spawned {
			task()
		}
	}
	wg.Wait()
	cGroups := groupsIn(al, c, s.DW())
	parallel.For(s.DW(), e.workers, 1, func(k int) {
		matrix.LinearCombine(cGroups[k], s.wF.Row(k), prods, 1)
	})
	putGroups(al, aGroups)
	putGroups(al, bGroups)
	putGroups(al, cGroups)
	for _, p := range prods {
		al.PutMat(p)
	}
	al.PutMats(prods)
}

// groupsIn splits a stacked operand into its d top-level contiguous row
// groups, drawing the headers and the slice from al.
func groupsIn(al pool.Allocator, m *matrix.Matrix, d int) []*matrix.Matrix {
	h := m.Rows / d
	out := al.Mats(d)
	for i := range out {
		g := al.Hdr()
		m.ViewInto(g, i*h, 0, h, m.Cols)
		out[i] = g
	}
	return out
}

// putGroups returns a groupsIn result to al.
func putGroups(al pool.Allocator, gs []*matrix.Matrix) {
	for _, g := range gs {
		al.PutHdr(g)
	}
	al.PutMats(gs)
}
