package bilinear_test

// Equivalence tests for the fused leaf step (see fused.go for the
// precise rounding statements these pin):
//
//  1. Encode fusion is exact: packing a (coefficient, source) term list
//     is bitwise identical to materializing the linear combination with
//     matrix.LinearCombine and packing the result.
//  2. End-to-end, fused equals unfused bitwise whenever no product's
//     decode is a single unit-coefficient accumulation (e.g. classical
//     algorithms with k0 = 1, whose outputs are each written by exactly
//     one product).
//  3. Elsewhere the two schedules differ only in low-order bits — the
//     fused path chains single-output accumulations like a naive
//     c += a·b while the unfused path materializes and adds once.

import (
	"testing"

	"abmm/internal/algos"
	"abmm/internal/bilinear"
	"abmm/internal/kernel"
	"abmm/internal/matrix"
	"abmm/internal/pool"
)

// TestFusedEncodePackBitwiseEqualsMaterialized pins statement 1 at the
// kernel boundary: GEMM over multi-term operand lists must match GEMM
// over the materialized combinations bitwise, because the only
// difference is where the encode arithmetic happens (during packing vs
// in a separate sweep) and both apply the same per-element operation
// order. Both calls use identical output lists so the write-out mode is
// the same; any difference would be the pack fusion's doing.
func TestFusedEncodePackBitwiseEqualsMaterialized(t *testing.T) {
	const m, k, n = 37, 19, 23 // odd shapes exercise edge tiles
	mk := func(rows, cols int, seed uint64) *matrix.Matrix {
		x := matrix.New(rows, cols)
		x.FillUniform(matrix.Rand(seed), -1, 1)
		return x
	}
	aSrc := []*matrix.Matrix{mk(m, k, 3), mk(m, k, 4), mk(m, k, 5)}
	bSrc := []*matrix.Matrix{mk(k, n, 6), mk(k, n, 7)}
	// Coefficients cover the interesting cases: copy, negate, scale.
	aCo := []float64{1, -1, 0.5}
	bCo := []float64{-0.25, 3}
	aTerms := []kernel.Term{{Coeff: aCo[0], M: aSrc[0]}, {Coeff: aCo[1], M: aSrc[1]}, {Coeff: aCo[2], M: aSrc[2]}}
	bTerms := []kernel.Term{{Coeff: bCo[0], M: bSrc[0]}, {Coeff: bCo[1], M: bSrc[1]}}

	s := matrix.New(m, k)
	matrix.LinearCombine(s, aCo, aSrc, 1)
	tt := matrix.New(k, n)
	matrix.LinearCombine(tt, bCo, bSrc, 1)
	sTerm := []kernel.Term{{Coeff: 1, M: s}}
	tTerm := []kernel.Term{{Coeff: 1, M: tt}}

	for _, bl := range []kernel.Blocking{{}, {MC: 8, KC: 4, NC: 8}} {
		// Scatter write-out: two scaled outputs, overwrite then accumulate.
		fo := []kernel.Out{{Coeff: 2, M: matrix.New(m, n)}, {Coeff: -0.5, M: matrix.New(m, n), Accum: true}}
		mo := []kernel.Out{{Coeff: 2, M: matrix.New(m, n)}, {Coeff: -0.5, M: matrix.New(m, n), Accum: true}}
		fo[1].M.FillUniform(matrix.Rand(9), -1, 1)
		mo[1].M.FillUniform(matrix.Rand(9), -1, 1)
		kernel.GEMM(fo, aTerms, bTerms, bl, 1, pool.Global, nil)
		kernel.GEMM(mo, sTerm, tTerm, bl, 1, pool.Global, nil)
		for i := range fo {
			if !matrix.Equal(fo[i].M, mo[i].M) {
				t.Errorf("blocking %+v out %d: fused pack differs from materialized pack (max diff %g)",
					bl, i, matrix.MaxAbsDiff(fo[i].M, mo[i].M))
			}
		}

		// Direct write-out: single unit output, both overwrite and accumulate.
		for _, accum := range []bool{false, true} {
			fc, mc := matrix.New(m, n), matrix.New(m, n)
			if accum {
				fc.FillUniform(matrix.Rand(11), -1, 1)
				mc.FillUniform(matrix.Rand(11), -1, 1)
			}
			kernel.GEMM([]kernel.Out{{Coeff: 1, M: fc, Accum: accum}}, aTerms, bTerms, bl, 1, pool.Global, nil)
			kernel.GEMM([]kernel.Out{{Coeff: 1, M: mc, Accum: accum}}, sTerm, tTerm, bl, 1, pool.Global, nil)
			if !matrix.Equal(fc, mc) {
				t.Errorf("blocking %+v accum=%v: direct fused pack differs from materialized (max diff %g)",
					bl, accum, matrix.MaxAbsDiff(fc, mc))
			}
		}
	}
}

// fusedPair runs one multiplication twice, fused and unfused, with
// otherwise identical options, and returns both products.
func fusedPair(alg *algos.Algorithm, m, k, n, levels int, opt bilinear.Options) (fused, unfused *matrix.Matrix) {
	a := matrix.New(m, k)
	b := matrix.New(k, n)
	a.FillUniform(matrix.Rand(uint64(m*k+levels)), -1, 1)
	b.FillUniform(matrix.Rand(uint64(k*n+levels+7)), -1, 1)
	fopt, uopt := opt, opt
	fopt.NoFuse = false
	uopt.NoFuse = true
	return bilinear.Multiply(alg.Spec, a, b, levels, fopt),
		bilinear.Multiply(alg.Spec, a, b, levels, uopt)
}

// TestFusedBitwiseEqualsUnfusedNoAccum pins statement 2: with k0 = 1
// every output group is written by exactly one product (a first-touch
// overwrite, never an accumulation), so fused and unfused agree
// bitwise across schedules.
func TestFusedBitwiseEqualsUnfusedNoAccum(t *testing.T) {
	for _, tc := range []struct {
		alg     *algos.Algorithm
		m, k, n int
	}{
		{algos.Classical(3, 1, 4), 36, 16, 64},
		{algos.Classical(2, 1, 2), 64, 32, 64},
	} {
		for _, levels := range []int{1, 2} {
			for _, opt := range []bilinear.Options{
				{Workers: 1},
				{Workers: 4},
				{Workers: 4, TaskParallel: true},
			} {
				fused, unfused := fusedPair(tc.alg, tc.m, tc.k, tc.n, levels, opt)
				if !matrix.Equal(fused, unfused) {
					t.Errorf("%s %dx%dx%d levels=%d opt=%+v: fused differs from unfused (max diff %g)",
						tc.alg.Name, tc.m, tc.k, tc.n, levels, opt,
						matrix.MaxAbsDiff(fused, unfused))
				}
			}
		}
	}
}

// TestFusedMatchesUnfusedWithinUlps pins statement 3: for general
// algorithms the only divergence is rounding association on
// single-output accumulations, so fused and unfused stay within a few
// ulps of each other — far inside the schedules' shared error envelope
// against classical.
func TestFusedMatchesUnfusedWithinUlps(t *testing.T) {
	for _, tc := range []struct {
		alg     *algos.Algorithm
		m, k, n int
	}{
		{algos.Strassen(), 64, 64, 64},
		{algos.Winograd(), 64, 64, 64},
		{algos.Classical(2, 2, 2), 64, 64, 64},
		{algos.Classical(3, 2, 4), 36, 16, 64},
	} {
		for _, levels := range []int{1, 2} {
			for _, opt := range []bilinear.Options{{Workers: 1}, {Workers: 4, TaskParallel: true}} {
				fused, unfused := fusedPair(tc.alg, tc.m, tc.k, tc.n, levels, opt)
				if d := matrix.MaxAbsDiff(fused, unfused); d > 1e-13 {
					t.Errorf("%s %dx%dx%d levels=%d opt=%+v: fused vs unfused diff %g, want ≤ 1e-13",
						tc.alg.Name, tc.m, tc.k, tc.n, levels, opt, d)
				}
			}
		}
	}
}

// TestFusedMultiSliceStaysAccurate forces base blocks deeper than one
// kc slice (tiny KC), where the fused write-out rounds the decode once
// per slice instead of once overall. The results may differ from the
// unfused schedule in low-order bits but must stay within the
// classical error envelope.
func TestFusedMultiSliceStaysAccurate(t *testing.T) {
	opt := bilinear.Options{Workers: 2, Kernel: kernel.Blocking{MC: 16, KC: 8, NC: 16}}
	fused, unfused := fusedPair(algos.Strassen(), 64, 64, 64, 1, opt)
	if d := matrix.MaxAbsDiff(fused, unfused); d > 1e-12 {
		t.Errorf("multi-slice fused vs unfused diff %g, want ≤ 1e-12", d)
	}
	a := matrix.New(64, 64)
	b := matrix.New(64, 64)
	a.FillUniform(matrix.Rand(uint64(64*64+1)), -1, 1)
	b.FillUniform(matrix.Rand(uint64(64*64+8)), -1, 1)
	if d := matrix.MaxAbsDiff(fused, mulRef(a, b)); d > 1e-11 {
		t.Errorf("multi-slice fused diff vs classical %g, want ≤ 1e-11", d)
	}
}
