package bilinear_test

import (
	"testing"
	"testing/quick"

	"abmm/internal/algos"
	"abmm/internal/bilinear"
	"abmm/internal/matrix"
)

func mulRef(a, b *matrix.Matrix) *matrix.Matrix {
	c := matrix.New(a.Rows, b.Cols)
	matrix.Mul(c, a, b, 2)
	return c
}

func maxDiffVsClassical(t *testing.T, alg *algos.Algorithm, m, k, n, levels int, opt bilinear.Options) float64 {
	t.Helper()
	a := matrix.New(m, k)
	b := matrix.New(k, n)
	a.FillUniform(matrix.Rand(uint64(m*k+levels)), -1, 1)
	b.FillUniform(matrix.Rand(uint64(k*n+levels+1)), -1, 1)
	got := bilinear.Multiply(alg.Spec, a, b, levels, opt)
	return matrix.MaxAbsDiff(got, mulRef(a, b))
}

func TestMultiplyStrassenMatchesClassical(t *testing.T) {
	alg := algos.Strassen()
	for _, levels := range []int{0, 1, 2, 3} {
		for _, opt := range []bilinear.Options{
			{Workers: 1},
			{Workers: 4},
			{Workers: 4, TaskParallel: true},
			{Workers: 1, Direct: true},
			{Workers: 4, Direct: true},
			{Workers: 4, Direct: true, TaskParallel: true},
		} {
			if d := maxDiffVsClassical(t, alg, 64, 64, 64, levels, opt); d > 1e-11 {
				t.Errorf("levels=%d opt=%+v: diff %g", levels, opt, d)
			}
		}
	}
}

func TestMultiplyWinogradAndClassical222(t *testing.T) {
	for _, alg := range []*algos.Algorithm{algos.Winograd(), algos.Classical(2, 2, 2)} {
		if d := maxDiffVsClassical(t, alg, 96, 96, 96, 2, bilinear.Options{Workers: 3}); d > 1e-11 {
			t.Errorf("%s: diff %g", alg.Name, d)
		}
	}
}

func TestMultiplyRectangularBase(t *testing.T) {
	// ⟨3,2,4⟩ classical exercises rectangular partitioning.
	alg := algos.Classical(3, 2, 4)
	if d := maxDiffVsClassical(t, alg, 36, 16, 64, 2, bilinear.Options{Workers: 2}); d > 1e-11 {
		t.Errorf("rectangular base diff %g", d)
	}
}

func TestMultiplyOddSizesViaPadding(t *testing.T) {
	alg := algos.Strassen()
	for _, dims := range [][3]int{{5, 7, 3}, {33, 65, 17}, {100, 100, 100}, {1, 9, 1}} {
		if d := maxDiffVsClassical(t, alg, dims[0], dims[1], dims[2], 2, bilinear.Options{Workers: 2}); d > 1e-11 {
			t.Errorf("%v: diff %g", dims, d)
		}
	}
}

func TestMultiplyKroneckerComposed(t *testing.T) {
	k, err := algos.Kronecker(algos.Strassen(), algos.Classical(2, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	// ⟨4,4,2;28⟩ base case: multiply a 32x32 by 32x16.
	if d := maxDiffVsClassical(t, k, 32, 32, 16, 1, bilinear.Options{Workers: 2}); d > 1e-11 {
		t.Errorf("composed algorithm diff %g", d)
	}
}

func TestMultiplyPropertyRandomSizes(t *testing.T) {
	alg := algos.Strassen()
	f := func(seed uint64) bool {
		m := int(seed%50) + 1
		k := int(seed/50%50) + 1
		n := int(seed/2500%50) + 1
		levels := int(seed % 3)
		a, b := matrix.New(m, k), matrix.New(k, n)
		a.FillUniform(matrix.Rand(seed), -1, 1)
		b.FillUniform(matrix.Rand(seed+1), -1, 1)
		got := bilinear.Multiply(alg.Spec, a, b, levels, bilinear.Options{Workers: 2})
		return matrix.MaxAbsDiff(got, mulRef(a, b)) < 1e-11
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestExecRejectsBadShapes(t *testing.T) {
	alg := algos.Strassen()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-conforming stacked operands")
		}
	}()
	bilinear.Exec(alg.Spec, matrix.New(16, 5), matrix.New(16, 7), 2, bilinear.Options{})
}

func TestExecRejectsNegativeLevels(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative levels")
		}
	}()
	bilinear.Exec(algos.Strassen().Spec, matrix.New(4, 4), matrix.New(4, 4), -1, bilinear.Options{})
}

func TestMultiplyRejectsDecomposedSpec(t *testing.T) {
	fd, err := algos.FullDecomposition(algos.Strassen())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for decomposed spec in Multiply")
		}
	}()
	bilinear.Multiply(fd.Spec, matrix.New(4, 4), matrix.New(4, 4), 1, bilinear.Options{})
}

func TestLayoutRoundTrip(t *testing.T) {
	for _, l := range []int{0, 1, 2, 3} {
		m := matrix.New(24, 24)
		m.FillUniform(matrix.Rand(uint64(l)), -1, 1)
		if l > 0 && (24%(2<<uint(l-1)) != 0) {
			continue
		}
		pm, pk, _ := matrix.PadShape(24, 24, 24, 2, 2, 2, l)
		p := m.PadTo(pm, pk)
		s := bilinear.ToRecursive(p, 2, 2, l, 2)
		back := matrix.New(p.Rows, p.Cols)
		bilinear.FromRecursive(s, back, 2, 2, l, 2)
		if !matrix.Equal(back, p) {
			t.Fatalf("layout round trip failed at l=%d", l)
		}
	}
}

func TestLayoutRectangular(t *testing.T) {
	m := matrix.New(18, 32)
	m.FillUniform(matrix.Rand(3), -1, 1)
	// 3×2 base, two levels: 36 base blocks of 2×8 stacked vertically.
	s := bilinear.ToRecursive(m, 3, 2, 2, 2)
	if s.Rows != 72 || s.Cols != 8 {
		t.Fatalf("stacked shape %dx%d, want 72x8", s.Rows, s.Cols)
	}
	back := matrix.New(18, 32)
	bilinear.FromRecursive(s, back, 3, 2, 2, 2)
	if !matrix.Equal(back, m) {
		t.Fatal("rectangular layout round trip failed")
	}
	// Spot-check block placement: base block (0,0) is m[0:2,0:8].
	if matrix.MaxAbsDiff(s.View(0, 0, 2, 8), m.View(0, 0, 2, 8)) != 0 {
		t.Fatal("first base block misplaced")
	}
}
