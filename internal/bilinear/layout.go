package bilinear

import (
	"abmm/internal/matrix"
	"abmm/internal/parallel"
	"abmm/internal/pool"
)

// The block-recursive ("stacked") layout stores an M×K matrix that will
// undergo L recursion levels of an m0×k0 partition as a tall matrix of
// (m0·k0)^L base blocks, each (M/m0^L)×(K/k0^L), stacked vertically in
// recursive row-major block order: the first m0·k0 groups of rows are
// the recursively-laid-out sub-blocks A₁...A_{m0k0} of the top-level
// partition. One recursion level of the engine then addresses its D
// sub-operands as contiguous row ranges, so every linear combination in
// the encode/decode and basis-transformation phases streams over
// contiguous memory.

// ToRecursive copies m into stacked layout for L levels of an m0×k0
// partition. m's dimensions must be divisible by m0^L and k0^L.
func ToRecursive(m *matrix.Matrix, m0, k0, l, workers int) *matrix.Matrix {
	checkDivisible(m, m0, k0, l)
	h, w := m.Rows/ipow(m0, l), m.Cols/ipow(k0, l)
	out := matrix.New(ipow(m0*k0, l)*h, w)
	ToRecursiveInto(out, m, m0, k0, l, workers, pool.Global)
	return out
}

// ToRecursiveInto copies m into dst in stacked layout for L levels of
// an m0×k0 partition, the destination-passing form of ToRecursive. dst
// must have m's element count and (m0·k0)^L·(m.Rows/m0^L) rows; every
// element of dst is overwritten, so dst may be dirty scratch. View
// headers for the recursion are drawn from al.
//abmm:hotpath
func ToRecursiveInto(dst, m *matrix.Matrix, m0, k0, l, workers int, al pool.Allocator) {
	checkDivisible(m, m0, k0, l)
	if dst.Rows*dst.Cols != m.Rows*m.Cols || dst.Rows != ipow(m0*k0, l)*(m.Rows/ipow(m0, l)) {
		panic(matrix.ErrShape)
	}
	if l == 0 {
		matrix.CopyInto(dst, m)
		return
	}
	// Parallelize over the top-level blocks.
	rows := dst.Rows / (m0 * k0)
	if workers == 1 {
		toRecRec(dst, m, m0, k0, l, al)
		return
	}
	parallel.For(m0*k0, workers, 1, func(i int) {
		p, q := i/k0, i%k0
		sv, dv := al.Hdr(), al.Hdr()
		m.BlockInto(sv, m0, k0, p, q)
		dst.ViewInto(dv, i*rows, 0, rows, dst.Cols)
		toRecRec(dv, sv, m0, k0, l-1, al)
		al.PutHdr(sv)
		al.PutHdr(dv)
	})
}

// toRecRec is ToRecursiveInto's recursion, a plain function so the
// sequential path allocates no closures.
func toRecRec(dst, src *matrix.Matrix, m0, k0, level int, al pool.Allocator) {
	if level == 0 {
		matrix.CopyInto(dst, src)
		return
	}
	rows := dst.Rows / (m0 * k0)
	sv, dv := al.Hdr(), al.Hdr()
	for p := 0; p < m0; p++ {
		for q := 0; q < k0; q++ {
			i := p*k0 + q
			src.BlockInto(sv, m0, k0, p, q)
			dst.ViewInto(dv, i*rows, 0, rows, dst.Cols)
			toRecRec(dv, sv, m0, k0, level-1, al)
		}
	}
	al.PutHdr(sv)
	al.PutHdr(dv)
}

// FromRecursive copies a stacked-layout matrix s (laid out for L levels
// of an m0×n0 partition) into dst, which must have dimensions divisible
// by m0^L and n0^L and the same element count as s.
func FromRecursive(s *matrix.Matrix, dst *matrix.Matrix, m0, n0, l, workers int) {
	FromRecursiveInto(dst, s, m0, n0, l, workers, pool.Global)
}

// FromRecursiveInto is FromRecursive with its destination first (the
// library's ...Into convention) and recursion headers drawn from al.
//abmm:hotpath
func FromRecursiveInto(dst, s *matrix.Matrix, m0, n0, l, workers int, al pool.Allocator) {
	checkDivisible(dst, m0, n0, l)
	if s.Rows*s.Cols != dst.Rows*dst.Cols {
		panic(matrix.ErrShape)
	}
	if l == 0 {
		matrix.CopyInto(dst, s)
		return
	}
	rows := s.Rows / (m0 * n0)
	if workers == 1 {
		fromRecRec(dst, s, m0, n0, l, al)
		return
	}
	parallel.For(m0*n0, workers, 1, func(i int) {
		p, q := i/n0, i%n0
		sv, dv := al.Hdr(), al.Hdr()
		s.ViewInto(sv, i*rows, 0, rows, s.Cols)
		dst.BlockInto(dv, m0, n0, p, q)
		fromRecRec(dv, sv, m0, n0, l-1, al)
		al.PutHdr(sv)
		al.PutHdr(dv)
	})
}

// fromRecRec is FromRecursiveInto's recursion as a plain function.
func fromRecRec(d, src *matrix.Matrix, m0, n0, level int, al pool.Allocator) {
	if level == 0 {
		matrix.CopyInto(d, src)
		return
	}
	rows := src.Rows / (m0 * n0)
	sv, dv := al.Hdr(), al.Hdr()
	for p := 0; p < m0; p++ {
		for q := 0; q < n0; q++ {
			i := p*n0 + q
			src.ViewInto(sv, i*rows, 0, rows, src.Cols)
			d.BlockInto(dv, m0, n0, p, q)
			fromRecRec(dv, sv, m0, n0, level-1, al)
		}
	}
	al.PutHdr(sv)
	al.PutHdr(dv)
}

func checkDivisible(m *matrix.Matrix, m0, k0, l int) {
	if m.Rows%ipow(m0, l) != 0 || m.Cols%ipow(k0, l) != 0 {
		panic(matrix.ErrShape)
	}
}

func ipow(b, e int) int {
	v := 1
	for ; e > 0; e-- {
		v *= b
	}
	return v
}
