package bilinear

import (
	"abmm/internal/matrix"
	"abmm/internal/parallel"
)

// The block-recursive ("stacked") layout stores an M×K matrix that will
// undergo L recursion levels of an m0×k0 partition as a tall matrix of
// (m0·k0)^L base blocks, each (M/m0^L)×(K/k0^L), stacked vertically in
// recursive row-major block order: the first m0·k0 groups of rows are
// the recursively-laid-out sub-blocks A₁...A_{m0k0} of the top-level
// partition. One recursion level of the engine then addresses its D
// sub-operands as contiguous row ranges, so every linear combination in
// the encode/decode and basis-transformation phases streams over
// contiguous memory.

// ToRecursive copies m into stacked layout for L levels of an m0×k0
// partition. m's dimensions must be divisible by m0^L and k0^L.
func ToRecursive(m *matrix.Matrix, m0, k0, l, workers int) *matrix.Matrix {
	checkDivisible(m, m0, k0, l)
	h, w := m.Rows/ipow(m0, l), m.Cols/ipow(k0, l)
	out := matrix.New(ipow(m0*k0, l)*h, w)
	var rec func(src *matrix.Matrix, dst *matrix.Matrix, level int)
	rec = func(src, dst *matrix.Matrix, level int) {
		if level == 0 {
			matrix.CopyInto(dst, src)
			return
		}
		rows := dst.Rows / (m0 * k0)
		for p := 0; p < m0; p++ {
			for q := 0; q < k0; q++ {
				i := p*k0 + q
				rec(src.Block(m0, k0, p, q), dst.View(i*rows, 0, rows, dst.Cols), level-1)
			}
		}
	}
	if l == 0 {
		matrix.CopyInto(out, m)
		return out
	}
	// Parallelize over the top-level blocks.
	rows := out.Rows / (m0 * k0)
	parallel.For(m0*k0, workers, 1, func(i int) {
		p, q := i/k0, i%k0
		rec(m.Block(m0, k0, p, q), out.View(i*rows, 0, rows, out.Cols), l-1)
	})
	return out
}

// FromRecursive copies a stacked-layout matrix s (laid out for L levels
// of an m0×n0 partition) into dst, which must have dimensions divisible
// by m0^L and n0^L and the same element count as s.
func FromRecursive(s *matrix.Matrix, dst *matrix.Matrix, m0, n0, l, workers int) {
	checkDivisible(dst, m0, n0, l)
	if s.Rows*s.Cols != dst.Rows*dst.Cols {
		panic(matrix.ErrShape)
	}
	var rec func(src, d *matrix.Matrix, level int)
	rec = func(src, d *matrix.Matrix, level int) {
		if level == 0 {
			matrix.CopyInto(d, src)
			return
		}
		rows := src.Rows / (m0 * n0)
		for p := 0; p < m0; p++ {
			for q := 0; q < n0; q++ {
				i := p*n0 + q
				rec(src.View(i*rows, 0, rows, src.Cols), d.Block(m0, n0, p, q), level-1)
			}
		}
	}
	if l == 0 {
		matrix.CopyInto(dst, s)
		return
	}
	rows := s.Rows / (m0 * n0)
	parallel.For(m0*n0, workers, 1, func(i int) {
		p, q := i/n0, i%n0
		rec(s.View(i*rows, 0, rows, s.Cols), dst.Block(m0, n0, p, q), l-1)
	})
}

func checkDivisible(m *matrix.Matrix, m0, k0, l int) {
	if m.Rows%ipow(m0, l) != 0 || m.Cols%ipow(k0, l) != 0 {
		panic(matrix.ErrShape)
	}
}

func ipow(b, e int) int {
	v := 1
	for ; e > 0; e-- {
		v *= b
	}
	return v
}
