package bilinear_test

// Tests for Engine.WithRecorder: the shallow rebind the serving layer
// uses to attach a per-request recorder to a cached plan's engine.

import (
	"sync/atomic"
	"testing"
	"time"

	"abmm/internal/algos"
	"abmm/internal/bilinear"
	"abmm/internal/matrix"
	"abmm/internal/obs"
	"abmm/internal/pool"
)

// countRec counts recorder events; concurrency-safe like the interface
// demands.
type countRec struct {
	phases atomic.Int64
	muls   atomic.Int64
	tasks  atomic.Int64
	arenas atomic.Int64
}

func (r *countRec) PhaseDone(obs.Phase, time.Duration) { r.phases.Add(1) }
func (r *countRec) MulDone(obs.MulInfo, time.Duration) { r.muls.Add(1) }
func (r *countRec) TaskSpawn(bool)                     { r.tasks.Add(1) }
func (r *countRec) ArenaRelease(obs.ArenaUsage)        { r.arenas.Add(1) }

func TestEngineWithRecorder(t *testing.T) {
	alg := algos.Strassen()
	base := &countRec{}
	e := bilinear.NewEngine(alg.Spec, bilinear.Options{Workers: 1, Recorder: base}, 1)

	if e.WithRecorder(base) != e {
		t.Fatal("WithRecorder with the current recorder should return the engine unchanged")
	}
	per := &countRec{}
	e2 := e.WithRecorder(per)
	if e2 == e {
		t.Fatal("WithRecorder with a new recorder should return a copy")
	}

	const n = 32
	a, b := matrix.New(n, n), matrix.New(n, n)
	a.FillUniform(matrix.Rand(7), -1, 1)
	b.FillUniform(matrix.Rand(8), -1, 1)
	as := bilinear.ToRecursive(a, alg.Spec.M0, alg.Spec.K0, 1, 1)
	bs := bilinear.ToRecursive(b, alg.Spec.K0, alg.Spec.N0, 1, 1)

	run := func(eng *bilinear.Engine) *matrix.Matrix {
		cs := matrix.New(alg.Spec.DW()*(as.Rows/alg.Spec.DU()), bs.Cols)
		eng.ExecInto(cs, as, bs, pool.Global)
		return cs
	}
	want := run(e)
	base0 := base.phases.Load()

	got := run(e2)
	if d := matrix.MaxAbsDiff(got, want); d != 0 {
		t.Fatalf("rebound engine computed a different product (diff %g)", d)
	}
	if per.phases.Load() == 0 {
		t.Fatal("per-request recorder saw no phase events")
	}
	if base.phases.Load() != base0 {
		t.Fatalf("original engine's recorder saw the rebound run (%d -> %d events)",
			base0, base.phases.Load())
	}
	// A nil engine stays nil (level-0 plans have no engine).
	var nilEng *bilinear.Engine
	if nilEng.WithRecorder(per) != nil {
		t.Fatal("nil engine should rebind to nil")
	}
}
