package bilinear

// The fused leaf step. At the last recursion level every operand of
// the R products is a linear combination of the top-level operand
// groups, and every output group is a linear combination of the R
// products. The classical schedule materializes those combinations
// (S_r, T_r, and the Scale/AddScaled decode sweeps) as full-matrix
// memory passes around each base-case multiply. The packed kernel
// makes all three passes free: its packing already copies each operand
// block once, so the encode coefficients ride along with the copy, and
// its write-out already touches each output tile once per kc slice, so
// the decode coefficients ride along with the store. One recursion
// level — 2R+ (number of nonzero w entries) full-matrix sweeps —
// disappears into the kernel's existing memory traffic. This is the
// fusion scheme of "Implementing Strassen's Algorithm with BLIS"
// (PAPERS.md), applied at the alternative-basis recursion's leaves.

import (
	"abmm/internal/kernel"
	"abmm/internal/matrix"
	"abmm/internal/parallel"
	"abmm/internal/pool"
)

// maxFusedDim bounds the stack-allocated term and output tables below;
// no catalog algorithm has D_U, D_V, D_W, or R beyond it, and larger
// specs spill to the heap (cold, and only for exotic hand-built specs).
const maxFusedDim = 32

// fusedStep executes one whole recursion step (level == 1) as R fused
// packed-kernel calls: product r multiplies the term lists
// (u[i][r], A_i) × (v[i][r], B_i) and scatters w[k][r]·P_r into each
// output group C_k during the kernel's tile write-out. The first
// product to touch a group overwrites it (Accum false) and later
// products accumulate, mirroring the Scale/AddScaled discipline of the
// sequential schedule; groups no product touches are zeroed at the
// end.
//
// Rounding relative to the unfused schedule (see fused_test.go for the
// pinned statements): the encode fusion is exact — packing applies
// terms with matrix.LinearCombine's per-element operation order, so a
// fused pack is bitwise identical to materializing S_r/T_r and packing
// the result. On the decode side, a product that scatters (≥ 2
// outputs, a non-unit coefficient, or a first-touch overwrite)
// reproduces the unfused Scale/AddScaled rounding exactly when the
// base block's inner dimension fits one kc slice; a product whose
// decode is a single unit-coefficient accumulation instead takes the
// kernel's direct path, which extends the destination's own ascending-k
// chain (bitwise equal to a naive c += a·b, the contract kernel.MulAdd
// pins) and differs from materialize-then-add in low-order bits.
// Deeper inner dimensions additionally round the decode once per kc
// slice. None of this changes the error analysis — each output element
// still receives the same number of rounded partial sums.
//
//abmm:hotpath
func (e *Engine) fusedStep(c, a, b *matrix.Matrix, al pool.Allocator, cn *parallel.Cancel) {
	s := e.specAt(1)
	sc := e.colsOf(s)
	aGroups := groupsIn(al, a, s.DU())
	bGroups := groupsIn(al, b, s.DV())
	cGroups := groupsIn(al, c, s.DW())

	// Term/output tables and touched flags live on the stack for every
	// catalog algorithm (filled by counted writes, never append, so the
	// backing arrays provably cannot grow); the cold spill keeps exotic
	// specs correct.
	var touchedBuf [maxFusedDim]bool
	var atBuf, btBuf [maxFusedDim]kernel.Term
	var outBuf [maxFusedDim]kernel.Out
	touched, at, bt, outs := touchedBuf[:], atBuf[:], btBuf[:], outBuf[:]
	if s.DW() > len(touchedBuf) {
		// Cold spill: no catalog algorithm exceeds the stack tables.
		//abmm:allow hotpath-alloc
		touched = make([]bool, s.DW())
		// Same cold spill for the write-out table.
		//abmm:allow hotpath-alloc
		outs = make([]kernel.Out, s.DW())
	}
	touched = touched[:s.DW()]
	if s.DU() > len(atBuf) {
		// Cold spill for the A-side term table.
		//abmm:allow hotpath-alloc
		at = make([]kernel.Term, s.DU())
	}
	if s.DV() > len(btBuf) {
		// Cold spill for the B-side term table.
		//abmm:allow hotpath-alloc
		bt = make([]kernel.Term, s.DV())
	}

	for r := 0; r < s.R; r++ {
		if cn.Canceled() {
			break
		}
		na := 0
		for i, u := range sc.u[r] {
			if u != 0 {
				at[na] = kernel.Term{Coeff: u, M: aGroups[i]}
				na++
			}
		}
		nb := 0
		for i, v := range sc.v[r] {
			if v != 0 {
				bt[nb] = kernel.Term{Coeff: v, M: bGroups[i]}
				nb++
			}
		}
		no := 0
		for k := 0; k < s.DW(); k++ {
			w := s.wF.At(k, r)
			if w == 0 {
				continue
			}
			outs[no] = kernel.Out{Coeff: w, M: cGroups[k], Accum: touched[k]}
			no++
			touched[k] = true
		}
		kernel.GEMM(outs[:no], at[:na], bt[:nb], e.kb, e.kernelWorkers, al, e.rec)
	}
	for k, t := range touched {
		if !t {
			cGroups[k].Zero()
		}
	}
	putGroups(al, aGroups)
	putGroups(al, bGroups)
	putGroups(al, cGroups)
}
