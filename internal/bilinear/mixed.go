package bilinear

import (
	"fmt"

	"abmm/internal/matrix"
	"abmm/internal/pool"
)

// ExecMixed runs a non-stationary ("non-uniform") recursion in the
// sense of Castrapel–Gustafson and D'Alberto: a different algorithm at
// each recursion level. specs[0] is applied at the top level, specs[1]
// one level down, and so on; the base case is classical. All specs must
// be standard-basis algorithms with identical base dimensions so the
// block partition stays consistent.
//
// Mixing schedules this way trades stability against additions level by
// level; the paper's Section V notes the technique does not readily
// extend to alternative basis algorithms, which is why this entry point
// accepts only standard-basis specs.
func ExecMixed(specs []*Spec, a, b *matrix.Matrix, opt Options) *matrix.Matrix {
	if len(specs) == 0 {
		panic("bilinear: ExecMixed needs at least one spec")
	}
	first := specs[0]
	for _, s := range specs[1:] {
		if !s.IsStandard() || !first.IsStandard() {
			panic("bilinear: ExecMixed requires standard-basis specs")
		}
		if s.M0 != first.M0 || s.K0 != first.K0 || s.N0 != first.N0 {
			panic(fmt.Sprintf("bilinear: mixed specs disagree on base dims: ⟨%d,%d,%d⟩ vs ⟨%d,%d,%d⟩",
				first.M0, first.K0, first.N0, s.M0, s.K0, s.N0))
		}
	}
	levels := len(specs)
	du := ipow(first.M0*first.K0, levels)
	if a.Rows%du != 0 {
		panic("bilinear: operand rows not divisible for mixed recursion")
	}
	e := NewEngine(first, opt, levels)
	e.mixed = specs
	for _, s := range specs {
		if !e.direct {
			s.Programs()
		}
		// Register every spec's coefficient columns up front so colsOf
		// stays read-only during (possibly task-parallel) execution.
		e.register(s)
	}
	dw := ipow(first.M0*first.N0, levels)
	c := matrix.New(dw*(a.Rows/du), b.Cols)
	e.recurse(c, a, b, levels, pool.Global, nil)
	return c
}

// MultiplyMixed is the padding/layout wrapper around ExecMixed: the
// non-stationary analogue of Multiply, recursing len(specs) levels.
func MultiplyMixed(specs []*Spec, a, b *matrix.Matrix, opt Options) *matrix.Matrix {
	if len(specs) == 0 {
		panic("bilinear: MultiplyMixed needs at least one spec")
	}
	s := specs[0]
	if a.Cols != b.Rows {
		panic(matrix.ErrShape)
	}
	levels := len(specs)
	w := opt.workers()
	pm, pk, pn := matrix.PadShape(a.Rows, a.Cols, b.Cols, s.M0, s.K0, s.N0, levels)
	as := ToRecursive(a.PadTo(pm, pk), s.M0, s.K0, levels, w)
	bs := ToRecursive(b.PadTo(pk, pn), s.K0, s.N0, levels, w)
	cs := ExecMixed(specs, as, bs, opt)
	cp := matrix.New(pm, pn)
	FromRecursive(cs, cp, s.M0, s.N0, levels, w)
	return cp.CropTo(a.Rows, b.Cols)
}
