# Tier-1 gate: `make` (= build + vet + test + lint) must stay green on
# every change.

GO ?= go

.PHONY: all build test race vet lint bench kernel-bench bench-json bench-compare serve-smoke slo-smoke tune-smoke tune-experiments trace-demo clean

all: build vet test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass at small sizes: the shared-Multiplier concurrency
# tests (including concurrent cancellation) plus the core/bilinear
# engines that execute under it, the observability collector's
# concurrent span aggregation, the serving layer (admission gate,
# coalescer, concurrent same-shape requests), and the analyzer suite's
# own fixture tests (-short skips its slow repo-wide pass, which
# `make lint` runs directly).
race:
	$(GO) test -race -short -run 'TestMultiplierConcurrent|TestMultiplyIntoPadded|TestMultiplierStats' .
	$(GO) test -race -short ./internal/core/... ./internal/bilinear/... ./internal/basis/... ./internal/kernel/... ./internal/pool/... ./internal/obs/... ./internal/reqtrace/... ./internal/lint/... ./internal/server/... ./internal/tune/...

vet:
	$(GO) vet ./...

# Repository-specific static analysis (see DESIGN.md §2c and §2h):
# type-checks every package and enforces the kernel invariants
# (hotpath-alloc, atomic-consistency, atomic-alignment,
# float-discipline, rat-aliasing, import-allowlist) and the serving-
# layer invariants (resource-pairing, ctx-discipline, lock-discipline,
# goroutine-lifecycle, metric-cardinality), with unjustified-allow
# keeping every suppression accountable. Nonzero exit on any finding.
lint:
	$(GO) run ./cmd/abmmvet ./...

# Allocation-tracking benchmarks for the plan/execute split and the
# observability overhead guard (0 allocs/op with a recorder attached).
bench:
	$(GO) test -run xxx -bench 'BenchmarkMultiplyInto' -benchmem .

# Base-case kernel benchmarks: packed register-tiled kernel vs the
# blocked reference loop (ns/op, GFLOPS via -benchmem MB/s, allocs).
# The full trajectory version (durable JSON cells at 256/1024/4096) is
# `make bench-json`; this is the quick in-place comparison.
kernel-bench:
	$(GO) test -run xxx -bench 'BenchmarkBaseCase' -benchmem ./internal/kernel/

# Durable benchmark trajectory (cmd/bench): run the fixed matrix and
# write the next BENCH_<k>.json, or re-run and diff against the newest
# committed baseline — BENCH_1.json, which includes the kernel-level
# cells — with nonzero exit on regression. CI runs bench-compare.
bench-json:
	$(GO) run ./cmd/bench

bench-compare:
	$(GO) run ./cmd/bench -o /tmp/abmm-bench-head.json -compare BENCH_1.json

# End-to-end serving smoke test: build abmmd, drive it with loadgen for
# a few seconds over a small shape mix, require at least one success,
# zero hard errors, and a clean traceparent round-trip on every
# response (loadgen -trace, the default, exits nonzero on any
# X-Abmm-Trace-Id mismatch), check that /debug/requests serves filed
# span trees, then drain via SIGTERM. CI runs this step.
SMOKE_ADDR ?= 127.0.0.1:18080
serve-smoke:
	$(GO) build -o /tmp/abmmd ./cmd/abmmd
	$(GO) build -o /tmp/abmm-loadgen ./cmd/loadgen
	/tmp/abmmd -addr $(SMOKE_ADDR) -algs ours,strassen & \
	pid=$$!; \
	for i in $$(seq 1 50); do \
		if wget -q -O /dev/null http://$(SMOKE_ADDR)/healthz 2>/dev/null; then break; fi; \
		sleep 0.1; \
	done; \
	/tmp/abmm-loadgen -target http://$(SMOKE_ADDR) -c 4 -d 3s -shapes 64,128,256 -min-ok 1; \
	status=$$?; \
	if [ $$status -eq 0 ]; then \
		wget -q -O /tmp/abmm-requests.json "http://$(SMOKE_ADDR)/debug/requests?format=json" && \
		grep -q '"outcome": "ok"' /tmp/abmm-requests.json && \
		grep -q '"name": "exec"' /tmp/abmm-requests.json || \
		{ echo "serve-smoke: /debug/requests missing traced spans" >&2; status=1; }; \
	fi; \
	if [ $$status -eq 0 ]; then \
		wget -q -O /tmp/abmm-plans.json "http://$(SMOKE_ADDR)/debug/plans?format=json" && \
		grep -q '"plan": "ours/' /tmp/abmm-plans.json || \
		{ echo "serve-smoke: /debug/plans missing the served plans" >&2; status=1; }; \
	fi; \
	kill -TERM $$pid; wait $$pid; \
	exit $$status

# SLO smoke test: run abmmd with an unmeetable 1ms latency objective and
# a tight admission gate, push it past the limit with loadgen, and
# assert the burn-rate readiness contract end to end — /readyz must
# report 503 right after the overload and recover to 200 once the short
# window (1/12th of -slo-window) clears with no further traffic. CI
# runs this step next to serve-smoke.
slo-smoke:
	$(GO) build -o /tmp/abmmd ./cmd/abmmd
	$(GO) build -o /tmp/abmm-loadgen ./cmd/loadgen
	/tmp/abmmd -addr $(SMOKE_ADDR) -algs ours -max-in-flight 1 -max-queued 2 \
		-slo-latency-p99 1ms -slo-window 24s & \
	pid=$$!; \
	for i in $$(seq 1 50); do \
		if wget -q -O /dev/null http://$(SMOKE_ADDR)/healthz 2>/dev/null; then break; fi; \
		sleep 0.1; \
	done; \
	/tmp/abmm-loadgen -target http://$(SMOKE_ADDR) -c 8 -d 3s -shapes 256 -min-ok 1; \
	status=$$?; \
	if [ $$status -eq 0 ]; then \
		if wget -q -O /dev/null "http://$(SMOKE_ADDR)/readyz" 2>/dev/null; then \
			echo "slo-smoke: /readyz still 200 right after the overload" >&2; status=1; \
		fi; \
	fi; \
	if [ $$status -eq 0 ]; then \
		sleep 3; \
		wget -q -O /dev/null "http://$(SMOKE_ADDR)/readyz" || \
		{ echo "slo-smoke: /readyz did not recover after the short window cleared" >&2; status=1; }; \
	fi; \
	kill -TERM $$pid; wait $$pid; \
	exit $$status

# Autotuning smoke test: offline-tune one tiny shape with `bench
# -tune`, boot abmmd with the written profile, and assert the decision
# is visible end to end — X-Abmm-Plan reports the tuned identity,
# /metrics reports abmm_tune_profile_loaded 1, and /debug/plans marks
# the plan tuned. CI runs this step next to serve-smoke/slo-smoke.
tune-smoke:
	$(GO) build -o /tmp/abmmd ./cmd/abmmd
	$(GO) build -o /tmp/abmm-bench ./cmd/bench
	/tmp/abmm-bench -tune 8x8x8 -tune-out /tmp/abmm-tune-smoke.json
	/tmp/abmmd -addr $(SMOKE_ADDR) -algs ours -tune-profile /tmp/abmm-tune-smoke.json & \
	pid=$$!; \
	for i in $$(seq 1 50); do \
		if wget -q -O /dev/null http://$(SMOKE_ADDR)/healthz 2>/dev/null; then break; fi; \
		sleep 0.1; \
	done; \
	status=0; \
	ROW='[1,1,1,1,1,1,1,1]'; \
	A="[$$ROW,$$ROW,$$ROW,$$ROW,$$ROW,$$ROW,$$ROW,$$ROW]"; \
	wget -q -S -O /dev/null --header='Content-Type: application/json' \
		--post-data="{\"alg\":\"ours\",\"a\":$$A,\"b\":$$A}" \
		http://$(SMOKE_ADDR)/v1/multiply 2>/tmp/abmm-tune-headers || \
		{ echo "tune-smoke: multiply request failed" >&2; status=1; }; \
	if [ $$status -eq 0 ]; then \
		grep -q 'X-Abmm-Plan: ours/L0/seq/tuned' /tmp/abmm-tune-headers || \
		{ echo "tune-smoke: X-Abmm-Plan missing the tuned identity" >&2; \
		  cat /tmp/abmm-tune-headers >&2; status=1; }; \
	fi; \
	if [ $$status -eq 0 ]; then \
		wget -q -O /tmp/abmm-tune-metrics http://$(SMOKE_ADDR)/metrics && \
		grep -q '^abmm_tune_profile_loaded 1' /tmp/abmm-tune-metrics || \
		{ echo "tune-smoke: abmm_tune_profile_loaded != 1" >&2; status=1; }; \
	fi; \
	if [ $$status -eq 0 ]; then \
		wget -q -O /tmp/abmm-tune-plans.json "http://$(SMOKE_ADDR)/debug/plans?format=json" && \
		grep -q '"tuned": true' /tmp/abmm-tune-plans.json || \
		{ echo "tune-smoke: /debug/plans missing a tuned plan" >&2; status=1; }; \
	fi; \
	kill -TERM $$pid; wait $$pid; \
	exit $$status

# Tuned-vs-default acceptance run behind the EXPERIMENTS.md table:
# tune the odd/non-square shape set and require at least two of the
# shapes to gain >= 10% over the shape-blind default plan (the two
# odd non-square shapes and the odd square clear it; the even
# rectangle is the honest control that mostly doesn't). Takes a few
# minutes of real measurement — not part of the tier-1 gate; run it
# uncontended when touching the tuner, the kernel, or the engine
# schedules.
tune-experiments:
	$(GO) run ./cmd/bench \
		-tune 1023x2047x2047,2047x1023x2047,1536x512x1536,1023x1023x1023 \
		-reps 5 \
		-tune-out /tmp/abmm-tune-experiments.json -tune-min-gain 10 -tune-min-gained 2

# Record an execution trace of one multiplication and open the viewer:
# task "abmm.multiply", regions per pipeline phase, and per-node
# bilinear.L<k> regions showing the recursion tree.
trace-demo:
	$(GO) run ./cmd/abmm -alg ours -n 1024 -levels 2 -reps 1 -check=false -trace trace.out
	$(GO) tool trace trace.out

clean:
	$(GO) clean ./...
