# Tier-1 gate: `make` (= build + test) must stay green on every change.

GO ?= go

.PHONY: all build test race vet bench clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass at small sizes: the shared-Multiplier concurrency
# tests plus the core/bilinear engines that execute under it.
race:
	$(GO) test -race -short -run 'TestMultiplierConcurrent|TestMultiplyIntoPadded|TestMultiplierStats' .
	$(GO) test -race -short ./internal/core/... ./internal/bilinear/... ./internal/basis/... ./internal/pool/...

vet:
	$(GO) vet ./...

# Allocation-tracking benchmarks for the plan/execute split.
bench:
	$(GO) test -run xxx -bench 'BenchmarkMultiplyInto' -benchmem .

clean:
	$(GO) clean ./...
