// Package abmm is a pure-Go implementation of alternative basis fast
// matrix multiplication, reproducing "Alternative Basis Matrix
// Multiplication is Fast and Stable" (Schwartz, Toledo, Vaknin,
// Wiernik; IPDPS 2024).
//
// The library multiplies dense float64 matrices with recursive bilinear
// ⟨M₀,K₀,N₀;R⟩ algorithms — Strassen, Winograd, Laderman, and the
// paper's alternative basis algorithms that simultaneously attain the
// optimal arithmetic leading coefficient (5) and the optimal stability
// factor (12) for the 2×2 base case — together with the analysis
// machinery of the paper: stability vectors and factors, prefactors,
// error bounds, exact arithmetic-cost accounting, diagonal scaling, and
// communication-cost models.
//
// # Quick start
//
//	a := abmm.NewMatrix(n, n)
//	b := abmm.NewMatrix(n, n)
//	// ... fill a and b ...
//	alg, _ := abmm.Lookup("ours")
//	c := abmm.Multiply(alg, a, b, abmm.Options{Levels: abmm.AutoLevels})
//
// When multiplying repeatedly, build a Multiplier once and use
// MultiplyInto: plans (recursion depth, padding, compiled schedules,
// sized workspace) are cached per operand shape, so steady-state calls
// allocate nothing beyond the destination you pass:
//
//	mu := abmm.NewMultiplier(alg, abmm.Options{Levels: abmm.AutoLevels})
//	c := abmm.NewMatrix(n, n)
//	for i := 0; i < reps; i++ {
//		mu.MultiplyInto(c, a, b) // reuses the cached plan and arenas
//	}
//	fmt.Println(mu.Stats())      // plan-cache hits/misses, arena bytes
//
// All algorithms are defined by exact rational coefficient data and are
// machine-verified against the Brent triple-product equations; the
// engine runs CSE-scheduled linear phases over a block-recursive
// layout, parallelized with goroutines.
package abmm

import (
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"sort"
	"sync"

	"abmm/internal/algos"
	"abmm/internal/bilinear"
	"abmm/internal/core"
	"abmm/internal/dd"
	"abmm/internal/matrix"
	"abmm/internal/obs"
	"abmm/internal/scaling"
	"abmm/internal/stability"
)

// Matrix is a dense row-major float64 matrix (possibly a view into a
// larger one).
type Matrix = matrix.Matrix

// Algorithm is a (possibly alternative basis) fast matrix
// multiplication algorithm.
type Algorithm = algos.Algorithm

// Options configures a multiplication; see the field docs on
// core.Options.
type Options = core.Options

// AutoLevels requests automatic recursion-depth selection.
const AutoLevels = core.AutoLevels

// NewMatrix returns a zeroed r-by-c matrix.
func NewMatrix(r, c int) *Matrix { return matrix.New(r, c) }

// FromRows builds a matrix from row slices (copied).
func FromRows(rows [][]float64) *Matrix { return matrix.FromRows(rows) }

// Multiplier executes one algorithm with fixed options, caching a
// compiled Plan (LRU, keyed by operand shape) and pooled workspace
// arenas across calls. It is safe for concurrent use from multiple
// goroutines; see MultiplyInto and Stats.
type Multiplier = core.Multiplier

// Plan is a multiplication compiled for one operand shape; obtain one
// from Multiplier.Plan to amortize even the cache lookup.
type Plan = core.Plan

// CacheStats reports a Multiplier's plan-cache hits, misses, evictions,
// live plan count, and retained workspace bytes.
type CacheStats = core.CacheStats

// PlanRegistry is the bounded per-plan telemetry registry: attach one
// via Options.Plans and every compiled plan claims a slot keyed by
// (shape, algorithm, levels, schedule, kernel blocking), recording
// latency, arena high-water, and sampled error per plan with plain
// atomics — the warm MultiplyInto path stays 0 allocs/op. Several
// Multipliers may share one registry; the serving layer surfaces it at
// /debug/plans and as abmm_plan_* metric families.
type PlanRegistry = obs.PlanRegistry

// PlanStats is one plan's aggregate in a PlanRegistry page.
type PlanStats = obs.PlanStats

// PlansPage is the registry export served by /debug/plans.
type PlansPage = obs.PlansPage

// NewPlanRegistry returns a per-plan telemetry registry bounded to
// maxPlans identities (0 selects obs.DefaultMaxPlans); plans beyond the
// bound share one "other" overflow slot, which also caps metric label
// cardinality.
func NewPlanRegistry(maxPlans int) *PlanRegistry { return obs.NewPlanRegistry(maxPlans) }

// Tuner decides plan configuration on plan-cache miss: attach one via
// Options.Tuner and shapes whose recursion depth was left automatic get
// their (algorithm, levels, schedule, workers) tuple from a persisted
// tuning profile or bounded measurement instead of the static defaults.
// internal/tune provides the implementation; tuned plans carry a
// "/tuned" marker in their identity.
type Tuner = core.Tuner

// TunedChoice is a Tuner's decision for one shape; see core.TunedChoice
// for which zero fields keep the multiplier's defaults.
type TunedChoice = core.TunedChoice

// SLOConfig declares latency/error service objectives for the serving
// layer's burn-rate SLO engine; see obs.SLOConfig and server.Config.SLO.
type SLOConfig = obs.SLOConfig

// Recorder receives execution events (per-phase spans, multiplication
// totals, task dispatch, arena traffic) from every multiplication run
// with it in Options.Recorder. A nil Recorder disables recording and
// keeps the warm MultiplyInto path at 0 allocs/op.
type Recorder = obs.Recorder

// ErrorSampler is the optional Recorder refinement that receives
// sampled accuracy measurements when Options.ErrorSampleEvery is set;
// Collector implements it.
type ErrorSampler = obs.ErrorSampler

// Collector is the standard Recorder: race-safe atomic aggregation
// with JSON (Snapshot), human-readable (Snapshot().Report()), and
// expvar (PublishStats) export. Attach one via Options.Recorder:
//
//	rec := abmm.NewCollector()
//	mu := abmm.NewMultiplier(alg, abmm.Options{Recorder: rec})
//	mu.MultiplyInto(c, a, b)
//	fmt.Println(rec.Snapshot().Report())
type Collector = obs.Collector

// Snapshot is a point-in-time copy of a Collector: per-phase wall time
// and shares, classical-equivalent and effective GFLOPS, task and
// arena counters, latency/arena/error histograms (p50/p95/p99), and
// the sampled measured-vs-bound accuracy summary.
type Snapshot = obs.Snapshot

// HistStats is the distribution summary (count, p50/p95/p99, max)
// embedded in Snapshot histogram fields.
type HistStats = obs.HistStats

// NewCollector returns an empty stats Collector.
func NewCollector() *Collector { return obs.NewCollector() }

// PublishStats registers a Collector with the expvar registry so
// /debug/vars serves live engine snapshots; re-registering a name is a
// no-op.
func PublishStats(name string, c *Collector) { obs.Publish(name, c) }

// StatsServer is a running observability HTTP server; see ServeStats.
type StatsServer = obs.Server

// ServeStats starts the stdlib-only observability HTTP server for a
// Collector on addr (":0" picks a free port): Prometheus text format
// at /metrics, the expvar registry at /debug/vars (use PublishStats to
// register the collector there), and net/http/pprof under
// /debug/pprof. Serving continues in the background until Close.
func ServeStats(addr string, c *Collector) (*StatsServer, error) { return obs.Serve(addr, c) }

// StatsHandler returns the standalone observability HTTP handler (the
// ServeStats routes plus a plain-text index at /); prefer MountStats to
// share a mux with your own routes.
func StatsHandler(c *Collector) http.Handler { return obs.Handler(c) }

// MetricsWriter appends extra Prometheus-text metric families to a
// /metrics scrape; see MountStats.
type MetricsWriter = obs.MetricsWriter

// MountStats registers the observability endpoints — /metrics,
// /debug/vars, and /debug/pprof — on an existing mux, so one
// http.Server (and one port) carries both application routes and
// observability. Each extra writer is invoked after the collector's
// families on every /metrics scrape; the serving layer uses this to
// publish its request, queue, and admission metrics alongside the
// engine's. ServeStats and StatsHandler are conveniences built on it.
func MountStats(mux *http.ServeMux, c *Collector, extra ...MetricsWriter) {
	obs.Mount(mux, c, extra...)
}

// WriteStatsMetrics renders the collector's current state in
// Prometheus text exposition format.
func WriteStatsMetrics(w io.Writer, c *Collector) { obs.WriteMetrics(w, c) }

// NewMultiplier returns a reusable Multiplier for the algorithm. Prefer
// it over repeated Multiply calls when multiplying many times: the
// per-shape setup (levels, padding, schedule compilation, workspace
// sizing) runs once and scratch buffers are recycled.
func NewMultiplier(alg *Algorithm, opt Options) *Multiplier {
	return core.New(alg, opt)
}

// Multiply computes a·b with the given algorithm.
func Multiply(alg *Algorithm, a, b *Matrix, opt Options) *Matrix {
	return core.Multiply(alg, a, b, opt)
}

// MultiplyClassical computes a·b with the cache-blocked parallel
// classical kernel (the library's DGEMM stand-in).
func MultiplyClassical(a, b *Matrix, workers int) *Matrix {
	c := matrix.New(a.Rows, b.Cols)
	matrix.Mul(c, a, b, workers)
	return c
}

// MultiplyMixed computes a·b with a non-stationary recursion: a
// different algorithm at each level, algs[0] outermost, recursing
// len(algs) levels before the classical base case. All algorithms must
// be standard-basis with identical base dimensions (the
// Castrapel–Gustafson / D'Alberto technique does not readily extend to
// alternative bases; see the paper's Section V).
func MultiplyMixed(algs []*Algorithm, a, b *Matrix, opt Options) (*Matrix, error) {
	if len(algs) == 0 {
		return nil, fmt.Errorf("abmm: MultiplyMixed needs at least one algorithm")
	}
	specs := make([]*bilinear.Spec, len(algs))
	for i, alg := range algs {
		if alg.IsAltBasis() {
			return nil, fmt.Errorf("abmm: MultiplyMixed: %s is an alternative basis algorithm", alg.Name)
		}
		specs[i] = alg.Spec
	}
	bopt := bilinear.Options{Workers: opt.Workers, TaskParallel: opt.TaskParallel, Direct: opt.Direct}
	return bilinear.MultiplyMixed(specs, a, b, bopt), nil
}

// ScalingMethod selects a diagonal scaling strategy for
// MultiplyScaled; see the scaling package constants mirrored below.
type ScalingMethod = scaling.Method

// Scaling methods (Section V of the paper).
const (
	ScaleNone          = scaling.None
	ScaleOutside       = scaling.Outside
	ScaleInside        = scaling.Inside
	ScaleOutsideInside = scaling.OutsideInside
	ScaleInsideOutside = scaling.InsideOutside
	ScaleRepeatedOI    = scaling.RepeatedOutsideInside
)

// MultiplyScaled computes a·b with diagonal scaling wrapped around the
// fast algorithm, improving component-wise accuracy on badly scaled
// inputs at O(n²) extra cost.
func MultiplyScaled(alg *Algorithm, a, b *Matrix, opt Options, method ScalingMethod) *Matrix {
	cfg := scaling.NewConfig(method)
	cfg.Workers = opt.Workers
	mu := core.New(alg, opt)
	return scaling.Multiply(cfg, a, b, func(x, y *Matrix) *Matrix {
		return mu.Multiply(x, y)
	})
}

// ReferenceProduct computes the classical product in double-double
// (≈106-bit) arithmetic and rounds to float64: the quad-precision
// oracle used by the paper's error measurements.
func ReferenceProduct(a, b *Matrix, workers int) *Matrix {
	return dd.ReferenceProduct(a, b, workers)
}

// registry maps catalog names to lazily-constructed algorithms.
var registry = map[string]func() *Algorithm{
	"classical":    func() *Algorithm { return algos.Classical(2, 2, 2) },
	"strassen":     algos.Strassen,
	"winograd":     algos.Winograd,
	"ours":         algos.Ours,
	"alt-winograd": algos.AltWinograd,
	"laderman":     algos.Laderman,
	"laderman-alt": algos.LadermanAlt,
	"hk223":        algos.HopcroftKerr223,
	"rect323":      algos.Rect323,
}

var (
	cacheMu    sync.Mutex
	algCache   = map[string]*Algorithm{}
	cacheNames []string
)

// Names lists the catalog algorithm names in sorted order.
func Names() []string {
	if cacheNames == nil {
		for n := range registry {
			cacheNames = append(cacheNames, n)
		}
		sort.Strings(cacheNames)
	}
	return append([]string(nil), cacheNames...)
}

// Lookup returns the named catalog algorithm. Construction (including
// exact basis derivation) happens once per name.
func Lookup(name string) (*Algorithm, error) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if alg, ok := algCache[name]; ok {
		return alg, nil
	}
	ctor, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("abmm: unknown algorithm %q (have %v)", name, Names())
	}
	// Construction runs under cacheMu deliberately: concurrent Lookups
	// of one name must not derive the exact basis twice.
	//abmm:allow lock-discipline
	alg := ctor()
	algCache[name] = alg
	return alg, nil
}

// Info summarizes an algorithm's analytic properties.
type Info struct {
	Name string
	// Base case ⟨M0,K0,N0;R⟩.
	M0, K0, N0, R int
	AltBasis      bool
	// BilinearAdditions is the CSE-scheduled additions per recursion
	// step; TransformAdditions the per-step basis transformation
	// additions.
	BilinearAdditions  int
	TransformAdditions int
	// LeadingCoefficient of the arithmetic cost (e.g. 7 for Strassen,
	// 6 for Winograd, 5 for the alternative basis algorithms).
	LeadingCoefficient float64
	// StabilityFactor E and the prefactors Q (tight) and QLoose (Q')
	// of the error bound (1 + Q·log_{N0}n)·n^{log_{N0}E}.
	StabilityFactor float64
	Q, QLoose       int
	// ErrorExponent is log_{N0} E.
	ErrorExponent float64
}

// InfoFor computes the analytic summary of an algorithm.
func InfoFor(alg *Algorithm) Info {
	s := alg.Spec
	ea, eb, dec := s.ScheduledAdditions()
	info := Info{
		Name: alg.Name,
		M0:   s.M0, K0: s.K0, N0: s.N0, R: s.R,
		AltBasis:           alg.IsAltBasis(),
		BilinearAdditions:  ea + eb + dec,
		LeadingCoefficient: stability.LeadingCoefficient(alg),
		StabilityFactor:    stability.FactorFloat(alg),
		Q:                  stability.Prefactor(alg),
		QLoose:             stability.PrefactorLoose(alg),
		ErrorExponent:      stability.ErrorExponent(alg),
	}
	if alg.Phi != nil {
		info.TransformAdditions += alg.Phi.Additions()
	}
	if alg.Psi != nil {
		info.TransformAdditions += alg.Psi.Additions()
	}
	if alg.Nu != nil {
		info.TransformAdditions += alg.Nu.Transposed().Additions()
	}
	return info
}

// ErrorBound evaluates the Theorem I.1 forward error bound factor
// f(n) for the algorithm on an n×n problem: ‖Ĉ−C‖ ≤ f(n)·‖A‖‖B‖·ε.
func ErrorBound(alg *Algorithm, n float64) float64 {
	return stability.ErrorBound(alg, n)
}

// MeasureMaxError multiplies `runs` random n×n pairs drawn from dist
// with the algorithm and returns the maximum absolute error against
// the quad-precision classical reference — the measurement behind
// Figures 2(C), 2(D) and 3.
func MeasureMaxError(alg *Algorithm, n, levels, runs int, dist Dist, seed uint64, workers int) float64 {
	max := 0.0
	mu := core.New(alg, Options{Levels: levels, Workers: workers})
	a, b, got := matrix.New(n, n), matrix.New(n, n), matrix.New(n, n)
	for run := 0; run < runs; run++ {
		rng := rand.New(rand.NewPCG(seed+uint64(run), seed^uint64(run*2654435761+1)))
		matrix.FillPair(a, b, dist, rng)
		mu.MultiplyInto(got, a, b)
		ref := dd.ReferenceProduct(a, b, workers)
		if d := matrix.MaxAbsDiff(got, ref); d > max {
			max = d
		}
	}
	return max
}

// Dist identifies an input distribution for experiments.
type Dist = matrix.Dist

// Experiment input distributions (Section VI).
const (
	DistSymmetric          = matrix.DistSymmetric
	DistPositive           = matrix.DistPositive
	DistAdversarialOutside = matrix.DistAdversarialOutside
	DistAdversarialInside  = matrix.DistAdversarialInside
)

// Rand returns the library's deterministic PRNG for a seed; use with
// Matrix fill helpers for reproducible experiments.
func Rand(seed uint64) *rand.Rand { return matrix.Rand(seed) }

// FillPair fills a multiplication operand pair according to an
// experiment distribution (the adversarial distributions treat A and B
// asymmetrically, so both are filled together).
func FillPair(a, b *Matrix, dist Dist, rng *rand.Rand) { matrix.FillPair(a, b, dist, rng) }
